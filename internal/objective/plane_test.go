package objective

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/relation"
)

// planeAnswers builds n deterministic 2-column tuples.
func planeAnswers(n int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = relation.Ints(int64(i), int64((i*7)%13))
	}
	return out
}

func planeObjective(n int) *Objective {
	answers := planeAnswers(n)
	tr := &TableRelevance{Scores: map[string]float64{}, Default: 0.25}
	td := NewTableDistance(0.5)
	for i, t := range answers {
		tr.Set(t, float64(i%11)/11)
		for j := i + 1; j < n; j++ {
			td.Set(t, answers[j], float64((i+j)%17)/17)
		}
	}
	return New(MaxSum, tr, td, 0.5)
}

func TestPlaneMatchesInterfaces(t *testing.T) {
	const n = 40
	answers := planeAnswers(n)
	o := planeObjective(n)
	for name, opts := range map[string]PlaneOptions{
		"materialized": {},
		"memoized":     {MaxMatrixBytes: 8}, // too small to materialize
	} {
		p := NewPlane(o, answers, opts)
		if ok := p.Materialize(); ok != (name == "materialized") {
			t.Fatalf("%s: Materialize() = %v", name, ok)
		}
		for i := 0; i < n; i++ {
			if got, want := p.Rel(i), o.Rel.Rel(answers[i]); got != want {
				t.Fatalf("%s: Rel(%d) = %v, want %v", name, i, got, want)
			}
			for j := 0; j < n; j++ {
				if got, want := p.Dis(i, j), o.Dis.Dis(answers[i], answers[j]); got != want {
					t.Fatalf("%s: Dis(%d,%d) = %v, want %v", name, i, j, got, want)
				}
			}
		}
		wantMaxRel, wantMaxDis := 0.0, 0.0
		for i := 0; i < n; i++ {
			wantMaxRel = math.Max(wantMaxRel, o.Rel.Rel(answers[i]))
			for j := i + 1; j < n; j++ {
				wantMaxDis = math.Max(wantMaxDis, o.Dis.Dis(answers[i], answers[j]))
			}
		}
		if p.MaxRel() != wantMaxRel {
			t.Fatalf("%s: MaxRel = %v, want %v", name, p.MaxRel(), wantMaxRel)
		}
		if p.MaxDis() != wantMaxDis {
			t.Fatalf("%s: MaxDis = %v, want %v", name, p.MaxDis(), wantMaxDis)
		}
		sums := p.RowSums()
		for i := 0; i < n; i++ {
			want := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					want += o.Dis.Dis(answers[i], answers[j])
				}
			}
			if math.Abs(sums[i]-want) > 1e-12 {
				t.Fatalf("%s: RowSums[%d] = %v, want %v", name, i, sums[i], want)
			}
		}
	}
}

func TestPlaneEvalIDsMatchesEval(t *testing.T) {
	const n = 30
	answers := planeAnswers(n)
	base := planeObjective(n)
	ids := []int{3, 17, 5, 28, 11}
	u := make([]relation.Tuple, len(ids))
	for i, id := range ids {
		u[i] = answers[id]
	}
	for _, kind := range []Kind{MaxSum, MaxMin, Mono} {
		for _, lambda := range []float64{0, 0.5, 1} {
			o := New(kind, base.Rel, base.Dis, lambda)
			p := NewPlane(o, answers, PlaneOptions{})
			if got, want := o.EvalIDs(p, ids), o.Eval(u, answers); got != want {
				t.Fatalf("%s λ=%v: EvalIDs = %v, Eval = %v", kind, lambda, got, want)
			}
			if kind == Mono {
				got := o.MonoScoresPlane(p)
				want := o.MonoScores(answers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("λ=%v: MonoScoresPlane[%d] = %v, want %v", lambda, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestPlaneMaxSumDeltaIDs(t *testing.T) {
	const n = 20
	answers := planeAnswers(n)
	o := planeObjective(n)
	p := NewPlane(o, answers, PlaneOptions{})
	chosen := []int{2, 9, 14}
	u := []relation.Tuple{answers[2], answers[9], answers[14]}
	for cand := 0; cand < n; cand++ {
		if got, want := o.MaxSumDeltaIDs(p, chosen, cand, 5), o.MaxSumDelta(u, answers[cand], 5); got != want {
			t.Fatalf("MaxSumDeltaIDs(%d) = %v, want %v", cand, got, want)
		}
	}
}

func TestPlaneStreamingAppend(t *testing.T) {
	const n = 25
	answers := planeAnswers(n)
	o := planeObjective(n)
	p := NewPlane(o, nil, PlaneOptions{Streaming: true})
	for i, a := range answers {
		if id := p.Append(a); id != i {
			t.Fatalf("Append -> %d, want %d", id, i)
		}
	}
	if p.Materialize() {
		t.Fatal("streaming plane must not materialize")
	}
	for i := 0; i < n; i++ {
		if p.Rel(i) != o.Rel.Rel(answers[i]) {
			t.Fatalf("streaming Rel(%d) mismatch", i)
		}
		for j := 0; j < n; j++ {
			if p.Dis(i, j) != o.Dis.Dis(answers[i], answers[j]) {
				t.Fatalf("streaming Dis(%d,%d) mismatch", i, j)
			}
		}
	}
	// MaxDis recomputes after growth.
	before := p.MaxDis()
	extra := relation.Ints(1000, 1000)
	p.Append(extra)
	after := p.MaxDis()
	want := before
	for i := 0; i < n; i++ {
		want = math.Max(want, o.Dis.Dis(answers[i], extra))
	}
	if after != want {
		t.Fatalf("MaxDis after Append = %v, want %v", after, want)
	}
}

func TestPlaneBuildCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := planeObjective(10)
	if _, err := NewPlaneContext(ctx, o, planeAnswers(10), PlaneOptions{}); err == nil {
		t.Fatal("expected cancellation error from NewPlaneContext")
	}
	p := NewPlane(o, planeAnswers(200), PlaneOptions{})
	if _, err := p.MaterializeContext(ctx); err == nil {
		t.Fatal("expected cancellation error from MaterializeContext")
	}
	if p.Materialized() {
		t.Fatal("cancelled materialization must not publish the matrix")
	}
}

// TestPlaneConcurrentAccess hammers a plane from many goroutines while it
// materializes and memoizes; run under -race it proves the parallel fill
// and the sharded cache are data-race free.
func TestPlaneConcurrentAccess(t *testing.T) {
	const n = 120
	answers := planeAnswers(n)
	o := planeObjective(n)
	for name, opts := range map[string]PlaneOptions{
		"materialized": {},
		"memoized":     {MaxMatrixBytes: 8},
	} {
		p := NewPlane(o, answers, opts)
		var wg sync.WaitGroup
		errs := make(chan string, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if g == 0 {
					p.Materialize()
				}
				if g == 1 {
					p.RowSums()
					p.MaxDis()
				}
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						got := p.Dis(i, j)
						want := o.Dis.Dis(answers[i], answers[j])
						if got != want {
							select {
							case errs <- fmt.Sprintf("%s: Dis(%d,%d) = %v, want %v", name, i, j, got, want):
							default:
							}
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}

func TestPlaneMemoCapBoundsStorage(t *testing.T) {
	const n = 60
	answers := planeAnswers(n)
	o := planeObjective(n)
	// Budget of 320 bytes: matrix refused, every memo shard capped at one
	// entry, inserts past the cap evict instead of growing.
	p := NewPlane(o, answers, PlaneOptions{MaxMatrixBytes: 320})
	if p.Materialize() {
		t.Fatal("matrix should exceed the budget")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := p.Dis(i, j), o.Dis.Dis(answers[i], answers[j]); got != want {
				t.Fatalf("Dis(%d,%d) = %v, want %v past the memo cap", i, j, got, want)
			}
		}
	}
	stored, evictions := p.MemoStats()
	if bound := int64(p.shardCap) * memoShards; stored > bound {
		t.Fatalf("memo stored %d entries, cap %d", stored, bound)
	}
	// 1770 distinct pairs were pushed through a 64-entry cache: the cap
	// must have evicted, and the counter must say so.
	if evictions == 0 {
		t.Fatal("no evictions recorded after overflowing the memo cap")
	}
	if total := stored + evictions; total < n*(n-1)/2-memoShards {
		t.Fatalf("stored(%d) + evicted(%d) should account for ~every distinct pair", stored, evictions)
	}
}

func TestPlaneKeyedFastPath(t *testing.T) {
	// TableRelevance / TableDistance implement the Keyed interfaces, so the
	// plane must intern each tuple's key exactly once and score via ByKey.
	answers := planeAnswers(10)
	tr := &TableRelevance{Scores: map[string]float64{}, Default: 1}
	td := NewTableDistance(2)
	tr.Set(answers[3], 7)
	td.Set(answers[1], answers[4], 9)
	var kr KeyedRelevance = tr
	var kd KeyedDistance = td
	if kr.RelKey(answers[3].Key()) != 7 || kr.RelKey(answers[0].Key()) != 1 {
		t.Fatal("RelKey lookup wrong")
	}
	if kd.DisKeys(answers[1].Key(), answers[4].Key()) != 9 ||
		kd.DisKeys(answers[4].Key(), answers[1].Key()) != 9 ||
		kd.DisKeys(answers[2].Key(), answers[2].Key()) != 0 ||
		kd.DisKeys(answers[0].Key(), answers[2].Key()) != 2 {
		t.Fatal("DisKeys lookup wrong")
	}
	o := New(MaxSum, tr, td, 0.5)
	p := NewPlane(o, answers, PlaneOptions{})
	p.Materialize()
	if p.Rel(3) != 7 || p.Dis(1, 4) != 9 || p.Dis(0, 2) != 2 {
		t.Fatal("keyed plane values wrong")
	}
}

func TestTriIndex(t *testing.T) {
	// The packing must be a bijection onto [0, n(n-1)/2).
	const n = 17
	seen := make(map[int]bool)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			idx := triIndex(i, j)
			if idx < 0 || idx >= n*(n-1)/2 || seen[idx] {
				t.Fatalf("triIndex(%d,%d) = %d invalid or duplicate", i, j, idx)
			}
			seen[idx] = true
		}
	}
}
