// Package objective implements the bi-criteria objective functions of
// Section 3: max-sum diversification (FMS), max-min diversification (FMM)
// and the mono-objective formulation (Fmono), each defined from a relevance
// function δrel, a distance function δdis and the trade-off parameter
// λ ∈ [0,1]. λ = 0 yields relevance-only objectives and λ = 1 diversity-only
// objectives, the two extremes studied in Section 8.
package objective

import (
	"fmt"
	"math"

	"repro/internal/relation"
	"repro/internal/value"
)

// Relevance is δrel(·, Q): it scores a query answer's relevance to the query
// as a non-negative number (larger = more relevant). Implementations must be
// deterministic and PTIME, as the paper assumes.
type Relevance interface {
	Rel(t relation.Tuple) float64
}

// Distance is δdis(·, ·): a symmetric non-negative dissimilarity on answer
// tuples with δdis(t, t) = 0 (larger = more diverse).
type Distance interface {
	Dis(s, t relation.Tuple) float64
}

// KeyedRelevance is implemented by relevance functions that can score from
// a precomputed Tuple.Key(), sparing the per-lookup key rebuild that
// dominates table-backed scoring in tight loops. The score plane interns
// each answer's key once and drives every subsequent lookup through this
// interface when available.
type KeyedRelevance interface {
	// RelKey is Rel for the tuple whose canonical key is key.
	RelKey(key string) float64
}

// KeyedDistance is the pairwise twin of KeyedRelevance: a distance that can
// be looked up from two precomputed tuple keys.
type KeyedDistance interface {
	// DisKeys is Dis for the tuples whose canonical keys are a and b.
	DisKeys(a, b string) float64
}

// RelevanceFunc adapts a function to the Relevance interface.
type RelevanceFunc func(t relation.Tuple) float64

// Rel invokes the function.
func (f RelevanceFunc) Rel(t relation.Tuple) float64 { return f(t) }

// DistanceFunc adapts a function to the Distance interface.
type DistanceFunc func(s, t relation.Tuple) float64

// Dis invokes the function.
func (f DistanceFunc) Dis(s, t relation.Tuple) float64 { return f(s, t) }

// ConstRelevance returns a relevance function that is constant c, the shape
// used throughout the diversity-only reductions (λ=1 proofs).
func ConstRelevance(c float64) Relevance {
	return RelevanceFunc(func(relation.Tuple) float64 { return c })
}

// ZeroDistance is the all-zero distance used by the relevance-only
// reductions (λ=0 proofs).
func ZeroDistance() Distance {
	return DistanceFunc(func(_, _ relation.Tuple) float64 { return 0 })
}

// TableRelevance scores tuples by lookup, with a default for misses. It is
// the programmatic analogue of Example 3.1's history-derived relevance.
type TableRelevance struct {
	Scores  map[string]float64 // keyed by Tuple.Key()
	Default float64
}

// Rel returns the stored score or the default.
func (tr *TableRelevance) Rel(t relation.Tuple) float64 { return tr.RelKey(t.Key()) }

// RelKey is Rel from a precomputed tuple key (KeyedRelevance).
func (tr *TableRelevance) RelKey(key string) float64 {
	if s, ok := tr.Scores[key]; ok {
		return s
	}
	return tr.Default
}

// Set records a score for a tuple and returns the receiver for chaining.
func (tr *TableRelevance) Set(t relation.Tuple, s float64) *TableRelevance {
	if tr.Scores == nil {
		tr.Scores = make(map[string]float64)
	}
	tr.Scores[t.Key()] = s
	return tr
}

// AttrRelevance scores a tuple by a numeric attribute at a fixed column,
// scaled; negative results clamp to 0 to respect non-negativity.
func AttrRelevance(col int, scale float64) Relevance {
	return RelevanceFunc(func(t relation.Tuple) float64 {
		if col < 0 || col >= len(t) {
			return 0
		}
		v := t[col].AsFloat() * scale
		if v < 0 || math.IsNaN(v) {
			return 0
		}
		return v
	})
}

// HammingDistance counts positions at which two tuples differ — the
// "difference between their types" flavour of distance from Example 3.1,
// generalized to all columns.
func HammingDistance() Distance {
	return DistanceFunc(func(s, t relation.Tuple) float64 {
		n := len(s)
		if len(t) < n {
			n = len(t)
		}
		d := 0.0
		for i := 0; i < n; i++ {
			if !value.Equal(s[i], t[i]) {
				d++
			}
		}
		return d
	})
}

// WeightedHamming weighs per-column disagreement.
func WeightedHamming(weights []float64) Distance {
	return DistanceFunc(func(s, t relation.Tuple) float64 {
		d := 0.0
		for i := 0; i < len(weights) && i < len(s) && i < len(t); i++ {
			if !value.Equal(s[i], t[i]) {
				d += weights[i]
			}
		}
		return d
	})
}

// EuclideanDistance treats all columns as numeric coordinates.
func EuclideanDistance() Distance {
	return DistanceFunc(func(s, t relation.Tuple) float64 {
		n := len(s)
		if len(t) < n {
			n = len(t)
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			d := s[i].AsFloat() - t[i].AsFloat()
			sum += d * d
		}
		return math.Sqrt(sum)
	})
}

// TableDistance is a symmetric pairwise lookup with a default; it realizes
// the explicitly tabulated distance functions of the lower-bound proofs
// (e.g. Figure 2). Keys are stored unordered.
type TableDistance struct {
	Pairs   map[[2]string]float64
	Default float64
}

// NewTableDistance creates an empty table with the given default.
func NewTableDistance(def float64) *TableDistance {
	return &TableDistance{Pairs: make(map[[2]string]float64), Default: def}
}

// Set records δdis(s, t) = d (symmetrically).
func (td *TableDistance) Set(s, t relation.Tuple, d float64) *TableDistance {
	td.Pairs[pairKey(s.Key(), t.Key())] = d
	return td
}

// Dis looks up the pair, returning 0 on identical tuples and the default on
// misses.
func (td *TableDistance) Dis(s, t relation.Tuple) float64 {
	return td.DisKeys(s.Key(), t.Key())
}

// DisKeys is Dis from precomputed tuple keys (KeyedDistance): it spares the
// two Tuple.Key() string builds that otherwise dominate every lookup.
func (td *TableDistance) DisKeys(a, b string) float64 {
	if a == b {
		return 0
	}
	if d, ok := td.Pairs[pairKey(a, b)]; ok {
		return d
	}
	return td.Default
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Kind identifies which of the paper's three objective functions is in use.
type Kind int

// The three objective functions of Gollapudi & Sharma as revised in
// Section 3.2.
const (
	MaxSum Kind = iota // FMS
	MaxMin             // FMM
	Mono               // Fmono
)

// String returns the paper's abbreviation.
func (k Kind) String() string {
	switch k {
	case MaxSum:
		return "FMS"
	case MaxMin:
		return "FMM"
	case Mono:
		return "Fmono"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Objective bundles δrel, δdis, λ and the function kind; its Eval method
// computes F(U) for a candidate set U ⊆ Q(D).
type Objective struct {
	Kind   Kind
	Rel    Relevance
	Dis    Distance
	Lambda float64
}

// New builds an objective, defaulting nil components to constant-1 relevance
// and zero distance, and clamping λ into [0,1].
func New(kind Kind, rel Relevance, dis Distance, lambda float64) *Objective {
	if rel == nil {
		rel = ConstRelevance(1)
	}
	if dis == nil {
		dis = ZeroDistance()
	}
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	return &Objective{Kind: kind, Rel: rel, Dis: dis, Lambda: lambda}
}

// Eval computes F(U). For FMS and FMM, only U matters. For Fmono the whole
// answer space Q(D) enters through the normalized global distance term, so
// callers must pass it; result may be 0 for empty U.
//
//	FMS(U)  = (k-1)(1-λ)·Σ_{t∈U} δrel(t) + λ·Σ_{t≠t'∈U ordered} δdis(t,t')
//	FMM(U)  = (1-λ)·min_{t∈U} δrel(t) + λ·min_{t≠t'∈U} δdis(t,t')
//	Fmono(U)= Σ_{t∈U} [(1-λ)·δrel(t) + λ/(|Q(D)|-1)·Σ_{t'∈Q(D)} δdis(t,t')]
func (o *Objective) Eval(u []relation.Tuple, answers []relation.Tuple) float64 {
	switch o.Kind {
	case MaxSum:
		return o.evalMaxSum(u)
	case MaxMin:
		return o.evalMaxMin(u)
	case Mono:
		return o.evalMono(u, answers)
	default:
		panic(fmt.Sprintf("objective: unknown kind %d", o.Kind))
	}
}

func (o *Objective) evalMaxSum(u []relation.Tuple) float64 {
	k := len(u)
	if k == 0 {
		return 0
	}
	relSum := 0.0
	for _, t := range u {
		relSum += o.Rel.Rel(t)
	}
	disSum := 0.0
	for i := range u {
		for j := i + 1; j < len(u); j++ {
			disSum += o.Dis.Dis(u[i], u[j])
		}
	}
	// The paper's Σ_{t,t'∈U} ranges over ordered pairs: twice the
	// unordered sum (δdis is symmetric and zero on the diagonal).
	return float64(k-1)*(1-o.Lambda)*relSum + o.Lambda*2*disSum
}

func (o *Objective) evalMaxMin(u []relation.Tuple) float64 {
	if len(u) == 0 {
		return 0
	}
	minRel := math.Inf(1)
	for _, t := range u {
		if r := o.Rel.Rel(t); r < minRel {
			minRel = r
		}
	}
	minDis := 0.0
	if len(u) >= 2 {
		minDis = math.Inf(1)
		for i := range u {
			for j := i + 1; j < len(u); j++ {
				if d := o.Dis.Dis(u[i], u[j]); d < minDis {
					minDis = d
				}
			}
		}
	}
	return (1-o.Lambda)*minRel + o.Lambda*minDis
}

func (o *Objective) evalMono(u []relation.Tuple, answers []relation.Tuple) float64 {
	n := len(answers)
	sum := 0.0
	for _, t := range u {
		sum += (1 - o.Lambda) * o.Rel.Rel(t)
		if n > 1 {
			g := 0.0
			for _, s := range answers {
				g += o.Dis.Dis(t, s)
			}
			sum += o.Lambda / float64(n-1) * g
		}
	}
	return sum
}

// MonoScores precomputes the per-tuple score
// v(t) = (1-λ)·δrel(t) + λ/(|Q(D)|-1)·Σ_{t'∈Q(D)} δdis(t,t') for every
// answer. Fmono(U) = Σ_{t∈U} v(t), the modularity that powers every PTIME
// algorithm for Fmono in the paper (Thm 5.4, Thm 6.4, Cor 8.1).
func (o *Objective) MonoScores(answers []relation.Tuple) []float64 {
	n := len(answers)
	out := make([]float64, n)
	for i, t := range answers {
		v := (1 - o.Lambda) * o.Rel.Rel(t)
		if n > 1 {
			g := 0.0
			for _, s := range answers {
				g += o.Dis.Dis(t, s)
			}
			v += o.Lambda / float64(n-1) * g
		}
		out[i] = v
	}
	return out
}

// MaxSumDelta returns the increase of FMS when tuple t joins set u of target
// size k: the incremental form used by greedy heuristics and branch-and-
// bound pruning.
func (o *Objective) MaxSumDelta(u []relation.Tuple, t relation.Tuple, k int) float64 {
	d := float64(k-1) * (1 - o.Lambda) * o.Rel.Rel(t)
	for _, s := range u {
		d += o.Lambda * 2 * o.Dis.Dis(s, t)
	}
	return d
}
