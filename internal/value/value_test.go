package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		KindBool:   "bool",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 || v.AsFloat() != 42 {
		t.Errorf("Int(42) round-trip failed: %+v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Errorf("Float(2.5) round-trip failed: %+v", v)
	}
	if v := Str("abc"); v.Kind() != KindString || v.AsString() != "abc" {
		t.Errorf("Str round-trip failed: %+v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() || v.AsInt() != 1 {
		t.Errorf("Bool(true) round-trip failed: %+v", v)
	}
	if v := Bool(false); v.AsBool() || v.AsInt() != 0 {
		t.Errorf("Bool(false) round-trip failed: %+v", v)
	}
}

func TestZeroValueIsIntZero(t *testing.T) {
	var v Value
	if v.Kind() != KindInt || v.AsInt() != 0 {
		t.Errorf("zero Value = %+v, want Int(0)", v)
	}
	if !Equal(v, Int(0)) {
		t.Error("zero Value should equal Int(0)")
	}
}

func TestAsFloatOnString(t *testing.T) {
	if !math.IsNaN(Str("x").AsFloat()) {
		t.Error("Str.AsFloat should be NaN")
	}
}

func TestAsBool(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Int(0), false}, {Int(3), true},
		{Float(0), false}, {Float(0.1), true},
		{Str(""), false}, {Str("x"), true},
		{Bool(false), false}, {Bool(true), true},
	}
	for _, c := range cases {
		if got := c.v.AsBool(); got != c.want {
			t.Errorf("%v.AsBool() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Compare(Int(1), Float(1.5)) != -1 {
		t.Error("Int(1) should be less than Float(1.5)")
	}
	if Compare(Float(3.5), Int(3)) != 1 {
		t.Error("Float(3.5) should be greater than Int(3)")
	}
}

func TestCompareWithinKinds(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Str("c"), Str("b"), 1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Bool(true), Bool(false), 1},
		{Float(1.5), Float(2.5), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossKindOrdering(t *testing.T) {
	// Non-numeric cross-kind comparison orders by Kind.
	if Compare(Int(100), Str("a")) != -1 {
		t.Error("int should order before string")
	}
	if Compare(Str("a"), Bool(false)) != -1 {
		t.Error("string should order before bool")
	}
	if Compare(Bool(true), Int(0)) != 1 {
		t.Error("bool should order after int")
	}
}

func TestLessAndEqual(t *testing.T) {
	if !Less(Int(1), Int(2)) || Less(Int(2), Int(1)) || Less(Int(2), Int(2)) {
		t.Error("Less misbehaves on ints")
	}
	if !Equal(Str("x"), Str("x")) || Equal(Str("x"), Str("y")) {
		t.Error("Equal misbehaves on strings")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Str("hello"), "hello"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestKeyDistinguishesKinds(t *testing.T) {
	vals := []Value{Int(1), Str("1"), Bool(true), Float(1.5), Str("true")}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("Key collision between %v and %v: %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestKeyNumericAgreement(t *testing.T) {
	if Int(5).Key() != Float(5).Key() {
		t.Error("Int(5) and Float(5) should share a key since they are Equal")
	}
	if Int(5).Key() == Float(5.5).Key() {
		t.Error("distinct numerics must have distinct keys")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{`"quoted"`, Str("quoted")},
		{"'single'", Str("single")},
		{"plain", Str("plain")},
		{"  77 ", Int(77)},
	}
	for _, c := range cases {
		if got := Parse(c.in); !Equal(got, c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		v, w := Int(a), Int(b)
		return Compare(v, w) == -Compare(w, v) && (Compare(v, w) == 0) == Equal(v, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive over randomly generated ints (checked by
// comparing with the native ordering).
func TestCompareMatchesNativeOrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return Compare(Int(a), Int(b)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string Keys are injective on strings.
func TestStringKeyInjectiveProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return Str(a).Key() == Str(b).Key()
		}
		return Str(a).Key() != Str(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortStability(t *testing.T) {
	vs := []Value{Int(3), Float(1.5), Int(-2), Float(2), Int(0)}
	sort.Slice(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
	for i := 1; i < len(vs); i++ {
		if Compare(vs[i-1], vs[i]) > 0 {
			t.Fatalf("not sorted at %d: %v", i, vs)
		}
	}
}
