// Package value provides the typed constants that populate tuple fields in
// the relational substrate. The paper's model works over relations whose
// attributes carry constants drawn from ordered domains, with built-in
// predicates =, !=, <, <=, >, >= available in all four query languages; this
// package supplies those domains and their total order.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported kinds. Ordering between kinds (used only when values of
// different kinds are compared, which well-typed queries avoid) follows the
// declaration order below.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable typed constant. The zero Value is the integer 0.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value. Booleans order false < true.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload. It is the caller's responsibility to
// check the kind; for non-integers it converts where sensible (floats
// truncate, booleans map to 0/1) and returns 0 for strings.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		return 0
	}
}

// AsFloat returns the value as a float64, converting integers and booleans.
// Strings yield NaN.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt, KindBool:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		return math.NaN()
	}
}

// AsString returns the string payload, or the printed form for other kinds.
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// AsBool reports the value as a boolean: booleans directly, numbers by
// non-zero test, strings by non-emptiness.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	default:
		return v.s != ""
	}
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare totally orders values: -1 if v < w, 0 if equal, +1 if v > w.
// Numeric kinds compare by numeric value (so Int(2) equals Float(2)); other
// cross-kind comparisons order by Kind first. Within a kind the natural
// order applies.
func Compare(v, w Value) int {
	if v.IsNumeric() && w.IsNumeric() {
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, w.s)
	case KindBool:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether v and w are equal under Compare.
func Equal(v, w Value) bool { return Compare(v, w) == 0 }

// Less reports whether v orders strictly before w.
func Less(v, w Value) bool { return Compare(v, w) < 0 }

// String renders the value for display. Strings are returned verbatim.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Key returns a canonical encoding that distinguishes values of different
// kinds and payloads; it is suitable for use as a map key. Numerically equal
// int/float values encode identically so that Key-equality matches Equal for
// the numeric values produced by this package's constructors.
func (v Value) Key() string {
	switch v.kind {
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			return "i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "s" + v.s
	case KindBool:
		if v.i != 0 {
			return "bt"
		}
		return "bf"
	default:
		return "?"
	}
}

// Parse interprets a literal: quoted strings, true/false, integers, floats.
// Unquoted non-numeric text parses as a string, which keeps data loading
// forgiving.
func Parse(text string) Value {
	t := strings.TrimSpace(text)
	if len(t) >= 2 && (t[0] == '"' || t[0] == '\'') && t[len(t)-1] == t[0] {
		return Str(t[1 : len(t)-1])
	}
	switch t {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	return Str(t)
}
