package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFailNthFailsOnceThenPasses(t *testing.T) {
	fs := Wrap(nil)
	fs.SetInjector(FailNth(OpWrite, 2, nil))
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: got %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := fs.Failures(); got != 1 {
		t.Fatalf("Failures() = %d, want 1", got)
	}
	if got := fs.Count(OpWrite); got != 3 {
		t.Fatalf("Count(write) = %d, want 3", got)
	}
}

func TestFailFromStaysFailedUntilHealed(t *testing.T) {
	fs := Wrap(nil)
	fs.SetInjector(FailFrom(OpSync, 1, nil))
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: got %v, want ErrInjected", i+1, err)
		}
	}
	fs.Heal()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Heal: %v", err)
	}
	if got := fs.Failures(); got != 3 {
		t.Fatalf("Failures() = %d, want 3", got)
	}
}

// TestWriteCountSpansFiles pins the cross-file counting contract: "fail the
// Nth write" means the Nth write through the wrapper, not the Nth write of
// any one file.
func TestWriteCountSpansFiles(t *testing.T) {
	fs := Wrap(nil)
	fs.SetInjector(FailNth(OpWrite, 3, nil))
	dir := t.TempDir()
	a, err := fs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := fs.OpenFile(filepath.Join(dir, "b"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := a.Write([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("2")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write overall: got %v, want ErrInjected", err)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		op   Op
		n    int // the first occurrence that must fail
		once bool
	}{
		{"sync:5", OpSync, 5, true},
		{"write:3+", OpWrite, 3, false},
		{"rename:1", OpRename, 1, true},
	}
	for _, c := range cases {
		inj, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if err := inj(c.op, "p", c.n-1); c.n > 1 && err != nil {
			t.Errorf("%q fired at occurrence %d", c.spec, c.n-1)
		}
		if err := inj(c.op, "p", c.n); err == nil {
			t.Errorf("%q did not fire at occurrence %d", c.spec, c.n)
		}
		err = inj(c.op, "p", c.n+1)
		if c.once && err != nil {
			t.Errorf("%q fired again at occurrence %d", c.spec, c.n+1)
		}
		if !c.once && err == nil {
			t.Errorf("%q (sticky) did not fire at occurrence %d", c.spec, c.n+1)
		}
		if err := inj(Op("other"), "p", c.n); err != nil {
			t.Errorf("%q fired for a different op kind", c.spec)
		}
	}
	for _, bad := range []string{"sync", "sync:0", "sync:x", "frobnicate:3", ""} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestPassThroughWritesRealBytes guards against the wrapper swallowing
// data: with no schedule the file on disk holds exactly what was written.
func TestPassThroughWritesRealBytes(t *testing.T) {
	fs := Wrap(nil)
	path := filepath.Join(t.TempDir(), "x")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read back %q, want %q", got, "hello")
	}
}
