// Package faultfs wraps an fsio.FS with deterministic fault injection: an
// Injector decides, per operation kind and per-kind occurrence count,
// whether a write, sync, rename (or any other write-path call) fails.
// It is the storage half of the chaos harness — the WAL and snapshot
// writers take the wrapped FS through wal.Options.FS / DurabilityConfig.FS
// and the chaos suite asserts the engine degrades to read-only mode and
// recovers instead of corrupting state or serving wrong answers.
//
// All state is behind one mutex, so a single *FS is safe to share between
// the engine under test and the test body (which heals it, reads counters,
// or swaps schedules mid-run).
package faultfs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fsio"
)

// Op names one filesystem operation kind the wrapper can fail.
type Op string

// The operation kinds, matching the fsio.FS surface plus the two File
// methods writes flow through.
const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
	OpReadDir  Op = "readdir"
	OpReadFile Op = "readfile"
	OpSyncDir  Op = "syncdir"
)

// Injector inspects the n-th occurrence (1-based, counted per op kind) of
// op on path and returns a non-nil error to make it fail. Returning nil
// lets the operation through to the real filesystem.
type Injector func(op Op, path string, n int) error

// ErrInjected is the default injected failure.
var ErrInjected = fmt.Errorf("faultfs: injected fault")

// FailNth fails exactly the nth occurrence of kind, once.
func FailNth(kind Op, nth int, err error) Injector {
	if err == nil {
		err = ErrInjected
	}
	return func(op Op, path string, n int) error {
		if op == kind && n == nth {
			return err
		}
		return nil
	}
}

// FailFrom fails every occurrence of kind from the nth on (until the FS is
// healed) — the "disk went bad and stayed bad" schedule.
func FailFrom(kind Op, nth int, err error) Injector {
	if err == nil {
		err = ErrInjected
	}
	return func(op Op, path string, n int) error {
		if op == kind && n >= nth {
			return err
		}
		return nil
	}
}

// ParseSpec compiles the flag spelling of a schedule: "sync:5" fails the
// 5th sync once, "write:3+" fails every write from the 3rd until healed.
func ParseSpec(spec string) (Injector, error) {
	kind, count, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("faultfs: bad spec %q (want op:N or op:N+)", spec)
	}
	sticky := strings.HasSuffix(count, "+")
	count = strings.TrimSuffix(count, "+")
	n, err := strconv.Atoi(count)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("faultfs: bad count in spec %q", spec)
	}
	op := Op(kind)
	switch op {
	case OpOpen, OpWrite, OpSync, OpRename, OpRemove, OpMkdir, OpReadDir, OpReadFile, OpSyncDir:
	default:
		return nil, fmt.Errorf("faultfs: unknown op in spec %q", spec)
	}
	if sticky {
		return FailFrom(op, n, nil), nil
	}
	return FailNth(op, n, nil), nil
}

// FS is the fault-injecting filesystem wrapper.
type FS struct {
	inner fsio.FS

	mu       sync.Mutex
	inject   Injector
	counts   map[Op]int
	failures int
}

// Wrap returns a fault-injecting wrapper over inner (fsio.Default when
// nil) with no schedule installed: every operation passes through until
// SetInjector.
func Wrap(inner fsio.FS) *FS {
	if inner == nil {
		inner = fsio.Default
	}
	return &FS{inner: inner, counts: make(map[Op]int)}
}

// SetInjector installs (or, with nil, removes) the fault schedule. The
// per-op counters keep running across schedule swaps.
func (f *FS) SetInjector(inj Injector) {
	f.mu.Lock()
	f.inject = inj
	f.mu.Unlock()
}

// Heal removes the schedule: the filesystem behaves normally again.
func (f *FS) Heal() { f.SetInjector(nil) }

// Failures reports how many operations the schedule failed so far.
func (f *FS) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures
}

// Count reports how many operations of the given kind were attempted.
func (f *FS) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check counts the operation and consults the schedule.
func (f *FS) check(op Op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if f.inject == nil {
		return nil
	}
	if err := f.inject(op, path, f.counts[op]); err != nil {
		f.failures++
		return err
	}
	return nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (fsio.File, error) {
	if err := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (fsio.File, error) {
	if err := f.check(OpOpen, dir); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.check(OpRename, newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check(OpMkdir, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.check(OpReadDir, name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.check(OpSyncDir, dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes the write-path File methods through the parent's
// schedule, so "fail the Nth write" counts writes across every open file.
type faultFile struct {
	fs    *FS
	inner fsio.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite, f.inner.Name()); err != nil {
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check(OpSync, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Name() string { return f.inner.Name() }
