package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	diversification "repro"
	"repro/httpapi"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Shards are the shard server base addresses, index order fixed for
	// the cluster's lifetime ("host:port" or full "http://..." URLs).
	Shards []string

	// Slack sets the per-shard coreset budget k′ = k + slack. Negative
	// defers to the shard-side default (slack = k, i.e. k′ = 2k); zero is
	// the tight budget (k′ = k), trading union richness for shard work.
	Slack int

	// DistanceAttr names the answer attribute whose inequality defines the
	// 0/1 δdis the coordinator re-evaluates over merged rows. Cluster mode
	// cannot ship pairwise distances (they are quadratic), so an
	// attribute-based distance is the cluster contract; empty means the
	// library's default δdis over row values.
	DistanceAttr string

	// Timeout bounds each shard fan-out call; zero means the shard
	// client's default.
	Timeout time.Duration
}

// shardState is one shard's client plus the coordinator's observations of
// it, all atomics so the fan-out goroutines update them without locks.
type shardState struct {
	addr   string
	client *httpapi.Client

	requests    atomic.Int64
	errors      atomic.Int64
	lastLatency atomic.Int64
	maxLatency  atomic.Int64
	lastCoreset atomic.Int64
}

func (sh *shardState) observe(elapsed time.Duration, err error, coresetRows int) {
	sh.requests.Add(1)
	ns := elapsed.Nanoseconds()
	sh.lastLatency.Store(ns)
	for {
		max := sh.maxLatency.Load()
		if ns <= max || sh.maxLatency.CompareAndSwap(max, ns) {
			break
		}
	}
	if err != nil {
		sh.errors.Add(1)
		return
	}
	sh.lastCoreset.Store(int64(coresetRows))
}

// Coordinator fans diversify requests out to the cluster's shards, merges
// their k′-coresets and solves over the union on a local plane. It
// implements httpapi.ClusterBackend, so cmd/divserve serves it over the
// same wire protocol as a single engine.
type Coordinator struct {
	cfg    Config
	shards []*shardState

	requests atomic.Int64
	failures atomic.Int64
	fanOuts  atomic.Int64
	fanErrs  atomic.Int64
	partials atomic.Int64
}

// New builds a Coordinator over the configured shard addresses. Addresses
// without a scheme get "http://".
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	c := &Coordinator{cfg: cfg}
	for _, addr := range cfg.Shards {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty shard address")
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		c.shards = append(c.shards, &shardState{
			addr:   addr,
			client: &httpapi.Client{BaseURL: addr, DefaultTimeout: cfg.Timeout},
		})
	}
	return c, nil
}

// shardResult is one shard's fan-out outcome.
type shardResult struct {
	cs      *diversification.Coreset
	err     error
	elapsed time.Duration
}

// Do fans the diversify request to every shard, merges the returned
// coresets and runs the final greedy solve over the union. Only the
// diversify problem distributes — decide/count/in-top-r/rank interrogate
// the full answer set, which no shard holds — and only prepared-binding
// requests do: per-request candidate sets, constraints and scoring
// closures have no sound cluster semantics.
//
// The merged response is byte-deterministic given fixed shard responses:
// coresets are deduplicated and re-inserted in canonical row order, so the
// coordinator plane's ID order (and with it greedy's accumulation and
// tie-break order) reproduces a single engine's at S=1.
func (c *Coordinator) Do(ctx context.Context, name string, qr httpapi.QueryRequest) (*diversification.Response, error) {
	c.requests.Add(1)
	resp, err := c.do(ctx, name, qr)
	if err != nil {
		c.failures.Add(1)
	}
	return resp, err
}

func (c *Coordinator) do(ctx context.Context, name string, qr httpapi.QueryRequest) (*diversification.Response, error) {
	if err := validateClusterRequest(qr); err != nil {
		return nil, err
	}

	start := time.Now()
	results := c.fanOut(ctx, name, qr)
	m, err := c.merge(results)
	if err != nil {
		return nil, err
	}
	resp, err := c.solveMerged(ctx, m, qr.Explain)
	if err != nil {
		return nil, err
	}
	c.decorate(resp, m, results, qr.Explain)
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// validateClusterRequest rejects request shapes that do not distribute.
func validateClusterRequest(qr httpapi.QueryRequest) error {
	problem, err := diversification.ParseProblem(qr.Problem)
	if err != nil {
		return err
	}
	if problem != diversification.ProblemDiversify {
		return &diversification.ArgError{Field: "problem", Reason: fmt.Sprintf("%s does not distribute: it interrogates the full answer set, which no shard holds; the cluster coordinator serves diversify only", problem)}
	}
	if qr.Set != nil {
		return &diversification.ArgError{Field: "set", Reason: "per-request candidate sets are not supported in cluster mode"}
	}
	if len(qr.Constraints) > 0 {
		return &diversification.ArgError{Field: "constraints", Reason: "constraints are not supported in cluster mode (the coreset merge runs the greedy heuristic)"}
	}
	if qr.RelevanceAttr != "" || qr.DistanceAttr != "" {
		return &diversification.ArgError{Field: "relevance_attr", Reason: "per-request scoring overrides are not supported in cluster mode (shards ship scores under their prepared bindings)"}
	}
	if qr.Bound != nil || qr.Rank != nil {
		return &diversification.ArgError{Field: "bound", Reason: "bound/rank apply to decide/count/in-top-r/rank, which do not distribute"}
	}
	if qr.Objective != nil {
		obj, err := diversification.ParseObjective(*qr.Objective)
		if err != nil {
			return err
		}
		if obj == diversification.Mono {
			return &diversification.ArgError{Field: "objective", Reason: "mono objective is not coreset-mergeable (its value depends on all of Q(D), which no shard holds)"}
		}
	}
	if qr.Algorithm != nil {
		alg, err := diversification.ParseAlgorithm(*qr.Algorithm)
		if err != nil {
			return err
		}
		if alg != diversification.Auto && alg != diversification.Greedy {
			return &diversification.ArgError{Field: "algorithm", Reason: fmt.Sprintf("%s is not available in cluster mode: the coreset merge's 2-approximation holds for the greedy composition only", alg)}
		}
	}
	return nil
}

// fanOut issues the coreset request to every shard concurrently.
func (c *Coordinator) fanOut(ctx context.Context, name string, qr httpapi.QueryRequest) []shardResult {
	cr := httpapi.CoresetRequest{K: qr.K, Lambda: qr.Lambda, Objective: qr.Objective, TimeoutMillis: qr.TimeoutMillis}
	if c.cfg.Slack >= 0 {
		slack := c.cfg.Slack
		cr.Slack = &slack
	}
	out := make([]shardResult, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			t0 := time.Now()
			cs, err := sh.client.Coreset(ctx, name, cr)
			elapsed := time.Since(t0)
			rows := 0
			if cs != nil {
				rows = len(cs.Rows)
			}
			sh.observe(elapsed, err, rows)
			if err != nil {
				c.fanErrs.Add(1)
			}
			out[i] = shardResult{cs: cs, err: err, elapsed: elapsed}
		}(i, sh)
	}
	wg.Wait()
	c.fanOuts.Add(1)
	return out
}

// mergedCoresets is the union of the shard coresets plus the effective
// settings and markers the final solve and response decoration need.
type mergedCoresets struct {
	schema []string
	rows   [][]interface{}
	scores map[string]float64

	k         int
	lambda    float64
	objective diversification.Objective

	generation uint64 // sum of reporting shards' generations
	degraded   bool   // OR of shard degraded markers
	cached     bool   // OR of shard cached markers
	notes      []string
	anyDown    bool
}

// merge unions the successful shard coresets, deduplicating rows on their
// canonical key (two shards can project distinct base rows onto the same
// answer row) and keeping the maximum score for a duplicate — the
// deterministic choice. Rows come out in canonical key order, which fixes
// the coordinator plane's ID order. Shard failures become degradation
// notes unless every shard failed, which is an error.
func (c *Coordinator) merge(results []shardResult) (*mergedCoresets, error) {
	m := &mergedCoresets{scores: make(map[string]float64)}
	var firstErr error
	seen := make(map[string][]interface{})
	settingsSet := false
	for i, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			m.anyDown = true
			m.notes = append(m.notes, fmt.Sprintf("shard[%d] %s: %v", i, c.shards[i].addr, r.err))
			continue
		}
		cs := r.cs
		if !settingsSet {
			m.schema = cs.Schema
			m.k = cs.K
			m.lambda = cs.Lambda
			obj, err := diversification.ParseObjective(cs.Objective)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard[%d] %s echoed objective %q: %w", i, c.shards[i].addr, cs.Objective, err)
			}
			m.objective = obj
			settingsSet = true
		} else if len(cs.Schema) != len(m.schema) || cs.K != m.k || cs.Lambda != m.lambda || cs.Objective != m.objective.String() {
			// Shards echo their effective settings precisely so drift (a
			// misdeployed shard with different bindings) is an error, not a
			// silently wrong merge.
			return nil, fmt.Errorf("cluster: shard[%d] %s settings drift: (k=%d λ=%g %s |schema|=%d) vs (k=%d λ=%g %s |schema|=%d)",
				i, c.shards[i].addr, cs.K, cs.Lambda, cs.Objective, len(cs.Schema), m.k, m.lambda, m.objective, len(m.schema))
		}
		m.generation += cs.Generation
		m.degraded = m.degraded || cs.Degraded
		m.cached = m.cached || cs.Cached
		if cs.Degraded && cs.DegradedFrom != "" {
			m.notes = append(m.notes, fmt.Sprintf("shard[%d] %s: %s", i, c.shards[i].addr, cs.DegradedFrom))
		}
		for j, row := range cs.Rows {
			key := RowKey(row)
			score := 0.0
			if j < len(cs.Scores) {
				score = cs.Scores[j]
			}
			if prev, ok := m.scores[key]; !ok || score > prev {
				m.scores[key] = score
			}
			if _, ok := seen[key]; !ok {
				seen[key] = row
			}
		}
	}
	if !settingsSet {
		if firstErr == nil {
			firstErr = fmt.Errorf("cluster: no shard responded")
		}
		return nil, fmt.Errorf("cluster: all %d shards failed: %w", len(c.shards), firstErr)
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	m.rows = make([][]interface{}, len(keys))
	for i, key := range keys {
		m.rows[i] = seen[key]
	}
	return m, nil
}

// solveMerged runs the final greedy solve over the union: a fresh local
// engine holds the merged rows, relevance is the shipped score lookup, and
// δdis is re-evaluated from the configured distance attribute. The union
// is at most S·k′ rows, so the local plane is trivially materialized.
func (c *Coordinator) solveMerged(ctx context.Context, m *mergedCoresets, explain bool) (*diversification.Response, error) {
	eng := diversification.NewEngine()
	if err := eng.CreateTable("u", m.schema...); err != nil {
		return nil, fmt.Errorf("cluster: merged table: %w", err)
	}
	for _, row := range m.rows {
		if err := eng.Insert("u", row...); err != nil {
			return nil, fmt.Errorf("cluster: merged insert: %w", err)
		}
	}
	scores := m.scores
	head := strings.Join(m.schema, ", ")
	k := m.k
	if m.anyDown && k > len(m.rows) {
		// With a shard missing, the union can undershoot k; a shorter
		// flagged selection is the partial result, not an error.
		k = len(m.rows)
	}
	opts := []diversification.Option{
		diversification.WithK(k),
		diversification.WithLambda(m.lambda),
		diversification.WithObjective(m.objective),
		diversification.WithAlgorithm(diversification.Greedy),
		diversification.WithRelevance(func(r diversification.Row) float64 {
			return scores[RowKey(r.Values())]
		}),
	}
	if c.cfg.DistanceAttr != "" {
		opts = append(opts, diversification.WithDistance(diversification.AttrDistance(c.cfg.DistanceAttr)))
	}
	p, err := eng.Prepare(fmt.Sprintf("Q(%s) :- u(%s)", head, head), opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: merged statement: %w", err)
	}
	return p.Do(ctx, diversification.Request{Problem: diversification.ProblemDiversify, Explain: explain})
}

// decorate folds the shard markers and fan-out observations into the
// merged response: degraded/cached are ORs, the generation is the cluster
// watermark (sum of shard generations), and — when the caller asked for an
// explain — a cluster trailer records the per-shard coreset sizes and the
// slowest shard, keeping the report truthful about where the answer came
// from.
func (c *Coordinator) decorate(resp *diversification.Response, m *mergedCoresets, results []shardResult, explain bool) {
	resp.Generation = m.generation
	resp.Cached = resp.Cached || m.cached
	if m.degraded || m.anyDown {
		resp.Degraded = true
	}
	if m.anyDown {
		c.partials.Add(1)
	}
	if len(m.notes) > 0 {
		note := strings.Join(m.notes, "; ")
		if resp.DegradedFrom != "" {
			note = resp.DegradedFrom + "; " + note
		}
		resp.DegradedFrom = note
	}
	if !explain {
		return
	}
	sizes := make([]string, len(results))
	slowest := -1
	for i, r := range results {
		if r.err != nil {
			sizes[i] = "-"
		} else {
			sizes[i] = fmt.Sprintf("%d", len(r.cs.Rows))
		}
		if slowest < 0 || r.elapsed > results[slowest].elapsed {
			slowest = i
		}
	}
	var b strings.Builder
	b.WriteString(resp.Explain)
	if resp.Explain != "" && !strings.HasSuffix(resp.Explain, "\n") {
		b.WriteByte('\n')
	}
	slackDesc := "shard default (k)"
	if c.cfg.Slack >= 0 {
		slackDesc = fmt.Sprintf("%d", c.cfg.Slack)
	}
	fmt.Fprintf(&b, "cluster:   %d shards, slack %s\n", len(c.shards), slackDesc)
	fmt.Fprintf(&b, "coresets:  [%s] rows, %d merged unique\n", strings.Join(sizes, " "), len(m.rows))
	if slowest >= 0 {
		fmt.Fprintf(&b, "slowest:   shard[%d] %s (%s)\n", slowest, c.shards[slowest].addr, results[slowest].elapsed.Round(time.Microsecond))
	}
	resp.Explain = b.String()
}

// Refresh fans the refresh to every shard and merges the reports: counts
// sum, the mode is the worst any shard performed (warm < delta < rebuild).
// Unlike queries there is no partial success — refresh is a control-plane
// call whose caller needs to know the whole cluster is current.
func (c *Coordinator) Refresh(ctx context.Context, name string) (diversification.RefreshInfo, error) {
	c.requests.Add(1)
	infos := make([]diversification.RefreshInfo, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			t0 := time.Now()
			infos[i], errs[i] = sh.client.Refresh(ctx, name)
			sh.observe(time.Since(t0), errs[i], int(sh.lastCoreset.Load()))
			if errs[i] != nil {
				c.fanErrs.Add(1)
			}
		}(i, sh)
	}
	wg.Wait()
	var merged diversification.RefreshInfo
	rank := map[string]int{"": 0, "warm": 1, "delta": 2, "rebuild": 3}
	for i, err := range errs {
		if err != nil {
			c.failures.Add(1)
			return diversification.RefreshInfo{}, fmt.Errorf("cluster: refresh shard[%d] %s: %w", i, c.shards[i].addr, err)
		}
		info := infos[i]
		if rank[info.Mode] > rank[merged.Mode] {
			merged.Mode = info.Mode
		}
		merged.Added += info.Added
		merged.Removed += info.Removed
		merged.Rechecked += info.Rechecked
		merged.Answers += info.Answers
	}
	return merged, nil
}

// Mutate routes each row to its owning shard by the partition hash and
// applies the per-shard batches concurrently. Applied counts sum; the
// reported generation is the sum of the touched shards' post-batch
// generations (an advisory watermark, not the full cluster's). A shard
// failure aborts with an error — rows routed to healthy shards in the same
// batch may already be applied, which the per-shard applied counts in the
// error make observable rather than hidden.
func (c *Coordinator) Mutate(ctx context.Context, table string, rows [][]interface{}, del bool) (httpapi.MutateBody, error) {
	c.requests.Add(1)
	batches := make([][][]interface{}, len(c.shards))
	for _, row := range rows {
		i := ShardOf(row, len(c.shards))
		batches[i] = append(batches[i], row)
	}
	bodies := make([]httpapi.MutateBody, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, batch [][]interface{}) {
			defer wg.Done()
			sh := c.shards[i]
			t0 := time.Now()
			if del {
				bodies[i], errs[i] = sh.client.Delete(ctx, table, batch)
			} else {
				bodies[i], errs[i] = sh.client.Insert(ctx, table, batch)
			}
			sh.observe(time.Since(t0), errs[i], int(sh.lastCoreset.Load()))
			if errs[i] != nil {
				c.fanErrs.Add(1)
			}
		}(i, batch)
	}
	wg.Wait()
	var out httpapi.MutateBody
	for i, err := range errs {
		if err != nil {
			c.failures.Add(1)
			return out, fmt.Errorf("cluster: mutate shard[%d] %s (%d rows applied on other shards): %w",
				i, c.shards[i].addr, out.Applied, err)
		}
		out.Applied += bodies[i].Applied
		out.Generation += bodies[i].Generation
	}
	return out, nil
}

// Snapshot asks every shard to persist; generations sum into the cluster
// watermark. Any failure is an error — a partially persisted cluster is
// not a snapshot.
func (c *Coordinator) Snapshot(ctx context.Context) (diversification.SnapshotInfo, error) {
	c.requests.Add(1)
	infos := make([]diversification.SnapshotInfo, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			t0 := time.Now()
			infos[i], errs[i] = sh.client.Snapshot(ctx)
			sh.observe(time.Since(t0), errs[i], int(sh.lastCoreset.Load()))
			if errs[i] != nil {
				c.fanErrs.Add(1)
			}
		}(i, sh)
	}
	wg.Wait()
	var out diversification.SnapshotInfo
	for i, err := range errs {
		if err != nil {
			c.failures.Add(1)
			return diversification.SnapshotInfo{}, fmt.Errorf("cluster: snapshot shard[%d] %s: %w", i, c.shards[i].addr, err)
		}
		out.Generation += infos[i].Generation
	}
	return out, nil
}

// Metrics reports the coordinator's own counters with the cluster block
// populated; shard-internal counters live on the shards' own /metrics.
func (c *Coordinator) Metrics() diversification.Metrics {
	cm := &diversification.ClusterMetrics{
		Shards:         len(c.shards),
		FanOuts:        c.fanOuts.Load(),
		FanOutErrors:   c.fanErrs.Load(),
		PartialResults: c.partials.Load(),
	}
	for _, sh := range c.shards {
		cm.ShardStats = append(cm.ShardStats, diversification.ClusterShardMetrics{
			Addr:            sh.addr,
			Requests:        sh.requests.Load(),
			Errors:          sh.errors.Load(),
			LastLatencyNS:   sh.lastLatency.Load(),
			MaxLatencyNS:    sh.maxLatency.Load(),
			LastCoresetSize: sh.lastCoreset.Load(),
		})
	}
	return diversification.Metrics{
		Requests: c.requests.Load(),
		Failures: c.failures.Load(),
		Cluster:  cm,
	}
}

// Health aggregates shard liveness: "ok" when every shard answers with
// full health, "degraded" when any shard is down or itself degraded — the
// coordinator still serves (partial) answers, so degraded means "expect
// flagged results", not "take me out of rotation".
func (c *Coordinator) Health(ctx context.Context) httpapi.HealthBody {
	errs := make([]error, len(c.shards))
	bodies := make([]httpapi.HealthBody, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			bodies[i], errs[i] = sh.client.Health(ctx)
		}(i, sh)
	}
	wg.Wait()
	for i := range c.shards {
		if errs[i] != nil || bodies[i].Status != "ok" {
			return httpapi.HealthBody{Status: "degraded", ReadOnly: false}
		}
	}
	return httpapi.HealthBody{Status: "ok"}
}
