// Package cluster distributes the diversification engine across S shard
// processes: a Router hash-partitions relation mutations over the shards,
// and a Coordinator fans diversify requests out, collects per-shard
// k′-coresets and runs the final solve over their union on a local plane.
// Each shard is a full durable Service reached through httpapi.Client, so
// the cluster composes everything the single-engine tier already has —
// WAL durability, admission control, result caching, degradation — per
// shard, and adds partial-result degradation when a shard is down. The
// design follows D4M's associative-array distribution for the partitioned
// relational state; the merge step is sound because the paper's greedy
// 2-approximation survives composition (solve shard-locally, solve again
// over the union of coresets).
package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// RowKey renders a row of attribute values as a canonical type-tagged
// string: the routing hash input, and the coordinator's dedup/score-lookup
// key. The type tag keeps int64(1), float64(1) and "1" distinct — the
// engine stores them as distinct values, so the router must too.
func RowKey(row []interface{}) string {
	var b strings.Builder
	for _, v := range row {
		switch x := v.(type) {
		case int64:
			fmt.Fprintf(&b, "i%d|", x)
		case int:
			fmt.Fprintf(&b, "i%d|", x)
		case float64:
			fmt.Fprintf(&b, "f%g|", x)
		case bool:
			fmt.Fprintf(&b, "b%t|", x)
		case string:
			fmt.Fprintf(&b, "s%q|", x)
		default:
			fmt.Fprintf(&b, "?%v|", x)
		}
	}
	return b.String()
}

// ShardOf deterministically assigns a row to one of shards buckets:
// FNV-1a over the canonical row key, modulo the shard count. Both the
// mutation router and shard-mode data loading use it, so a row always
// lives on exactly one shard regardless of which path wrote it.
func ShardOf(row []interface{}, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(RowKey(row)))
	return int(h.Sum32() % uint32(shards))
}
