package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	diversification "repro"
	"repro/httpapi"
)

const testStmt = "Q(id, cat, rel) :- pts(id, cat, rel)"

// testRows builds n deterministic candidate rows: distinct ids, categories
// cycling through 7 values (the 0/1 attribute distance), and distinct
// relevance scores (7919 is coprime with the prime 104729, so the map is
// injective for n < 104729) — distinct scores keep greedy tie-break-free,
// which the byte-identity assertions rely on.
func testRows(n int) [][]interface{} {
	rows := make([][]interface{}, n)
	for i := 0; i < n; i++ {
		rows[i] = []interface{}{
			fmt.Sprintf("id-%04d", i),
			fmt.Sprintf("c%d", i%7),
			int64(1000 + (i*7919)%104729),
		}
	}
	return rows
}

func testOpts(k int, lambda float64, obj diversification.Objective) []diversification.Option {
	return []diversification.Option{
		diversification.WithK(k),
		diversification.WithLambda(lambda),
		diversification.WithObjective(obj),
		diversification.WithRelevance(diversification.AttrRelevance("rel")),
		diversification.WithDistance(diversification.AttrDistance("cat")),
	}
}

// newShardServer boots one full Service over the given rows behind a real
// HTTP handler — exactly what a shard process serves.
func newShardServer(t *testing.T, rows [][]interface{}, opts []diversification.Option) (*httptest.Server, *diversification.Service) {
	t.Helper()
	e := diversification.NewEngine()
	if err := e.CreateTable("pts", "id", "cat", "rel"); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := e.Insert("pts", row...); err != nil {
			t.Fatal(err)
		}
	}
	svc := diversification.NewService(e, diversification.ServiceConfig{})
	if err := svc.Register("pts", testStmt, opts...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(httpapi.NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, svc
}

// newCluster partitions rows by the production routing hash across S shard
// servers and returns a coordinator over them plus the per-shard servers.
func newCluster(t *testing.T, rows [][]interface{}, s, slack int, opts []diversification.Option) (*Coordinator, []*httptest.Server) {
	t.Helper()
	parts := make([][][]interface{}, s)
	for _, row := range rows {
		i := ShardOf(row, s)
		parts[i] = append(parts[i], row)
	}
	servers := make([]*httptest.Server, s)
	addrs := make([]string, s)
	for i := 0; i < s; i++ {
		servers[i], _ = newShardServer(t, parts[i], opts)
		addrs[i] = servers[i].URL
	}
	coord, err := New(Config{Shards: addrs, Slack: slack, DistanceAttr: "cat"})
	if err != nil {
		t.Fatal(err)
	}
	return coord, servers
}

// singleGreedy solves the same instance on one engine holding all rows:
// the reference the cluster merge is measured against.
func singleGreedy(t *testing.T, rows [][]interface{}, opts []diversification.Option) *diversification.Response {
	t.Helper()
	_, svc := newShardServer(t, rows, opts)
	greedy := diversification.Greedy
	resp, err := svc.Do(context.Background(), "pts", diversification.Request{
		Problem:   diversification.ProblemDiversify,
		Algorithm: &greedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func selectionKeys(resp *diversification.Response) []string {
	keys := make([]string, len(resp.Selection.Rows))
	for i, r := range resp.Selection.Rows {
		keys[i] = RowKey(r.Values())
	}
	return keys
}

// TestCoresetMergeDifferential is the acceptance suite: across FMS/FMM ×
// S∈{1,2,4,8} × slack∈{0,k}, the union-of-coresets solve returns exactly k
// rows and a value within the greedy 2-approximation bound of the
// single-engine greedy solve; at S=1 the merged answer is byte-identical
// to the single-engine one (same rows, same order, same value bits).
func TestCoresetMergeDifferential(t *testing.T) {
	const n, k, lambda = 60, 5, 0.6
	rows := testRows(n)
	ctx := context.Background()
	for _, obj := range []diversification.Objective{diversification.MaxSum, diversification.MaxMin} {
		opts := testOpts(k, lambda, obj)
		single := singleGreedy(t, rows, opts)
		if len(single.Selection.Rows) != k {
			t.Fatalf("%s: single-engine selected %d of k=%d", obj, len(single.Selection.Rows), k)
		}
		for _, s := range []int{1, 2, 4, 8} {
			for _, slack := range []int{0, k} {
				name := fmt.Sprintf("%s/S=%d/slack=%d", obj, s, slack)
				t.Run(name, func(t *testing.T) {
					coord, _ := newCluster(t, rows, s, slack, opts)
					resp, err := coord.Do(ctx, "pts", httpapi.QueryRequest{})
					if err != nil {
						t.Fatal(err)
					}
					if resp.Degraded {
						t.Fatalf("unexpected degraded merge: %s", resp.DegradedFrom)
					}
					if got := len(resp.Selection.Rows); got != k {
						t.Fatalf("merged selection has %d rows, want %d", got, k)
					}
					if resp.Selection.Value < single.Selection.Value/2-1e-9 {
						t.Fatalf("merged value %g below 2-approximation of single-engine %g",
							resp.Selection.Value, single.Selection.Value)
					}
					if s == 1 {
						if !reflect.DeepEqual(selectionKeys(resp), selectionKeys(single)) {
							t.Fatalf("S=1 selection differs from single engine:\n  merged %v\n  single %v",
								selectionKeys(resp), selectionKeys(single))
						}
						if math.Float64bits(resp.Selection.Value) != math.Float64bits(single.Selection.Value) {
							t.Fatalf("S=1 value not byte-identical: merged %x single %x",
								math.Float64bits(resp.Selection.Value), math.Float64bits(single.Selection.Value))
						}
					}
				})
			}
		}
	}
}

// TestClusterShardKill asserts the availability contract: with one of
// three shards killed, the merged answer is flagged degraded — and with
// full-partition coresets it is exactly the single-engine answer over the
// surviving shards' data, i.e. a partial result, never a wrong one.
func TestClusterShardKill(t *testing.T) {
	const n, k, lambda = 60, 5, 0.6
	rows := testRows(n)
	opts := testOpts(k, lambda, diversification.MaxSum)
	ctx := context.Background()

	// Slack >= n makes every shard ship its whole partition, so the
	// survivors' union IS their whole data set and the merged solve must
	// byte-match a single engine holding exactly that data.
	coord, servers := newCluster(t, rows, 3, n, opts)

	healthy, err := coord.Do(ctx, "pts", httpapi.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded {
		t.Fatalf("healthy cluster answered degraded: %s", healthy.DegradedFrom)
	}
	if h := coord.Health(ctx); h.Status != "ok" {
		t.Fatalf("healthy cluster reports %q", h.Status)
	}

	servers[1].Close()
	resp, err := coord.Do(ctx, "pts", httpapi.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("shard down but response not flagged degraded")
	}
	if !strings.Contains(resp.DegradedFrom, "shard[1]") {
		t.Fatalf("degraded_from does not name the dead shard: %q", resp.DegradedFrom)
	}
	var live [][]interface{}
	for _, row := range rows {
		if ShardOf(row, 3) != 1 {
			live = append(live, row)
		}
	}
	want := singleGreedy(t, live, opts)
	if !reflect.DeepEqual(selectionKeys(resp), selectionKeys(want)) {
		t.Fatalf("partial result differs from single-engine solve over surviving data:\n  merged %v\n  want   %v",
			selectionKeys(resp), selectionKeys(want))
	}
	if math.Float64bits(resp.Selection.Value) != math.Float64bits(want.Selection.Value) {
		t.Fatalf("partial value not byte-identical to surviving-data solve: %g vs %g",
			resp.Selection.Value, want.Selection.Value)
	}
	if h := coord.Health(ctx); h.Status != "degraded" {
		t.Fatalf("cluster with dead shard reports %q, want degraded", h.Status)
	}

	m := coord.Metrics()
	if m.Cluster == nil {
		t.Fatal("coordinator metrics missing cluster block")
	}
	if m.Cluster.FanOutErrors == 0 || m.Cluster.PartialResults == 0 {
		t.Fatalf("cluster metrics did not record the failure: %+v", m.Cluster)
	}
	if len(m.Cluster.ShardStats) != 3 || m.Cluster.ShardStats[1].Errors == 0 {
		t.Fatalf("shard stats did not record the dead shard: %+v", m.Cluster.ShardStats)
	}
}

// TestClusterAllShardsDown asserts total failure is an error, not an
// empty success.
func TestClusterAllShardsDown(t *testing.T) {
	rows := testRows(20)
	opts := testOpts(3, 0.5, diversification.MaxSum)
	coord, servers := newCluster(t, rows, 2, 0, opts)
	for _, srv := range servers {
		srv.Close()
	}
	if _, err := coord.Do(context.Background(), "pts", httpapi.QueryRequest{}); err == nil {
		t.Fatal("all shards down but Do succeeded")
	}
}

// TestClusterMutateRoutesAndServes covers the router half of the
// subsystem: coordinator mutations land on the owning shards, and the next
// merged solve sees them without an explicit refresh (shard solves
// revalidate lazily). A new dominant-relevance row must appear in the
// merged selection; deleting it must remove it again.
func TestClusterMutateRoutesAndServes(t *testing.T) {
	const n, k = 40, 3
	rows := testRows(n)
	opts := testOpts(k, 0.6, diversification.MaxSum)
	coord, _ := newCluster(t, rows, 4, k, opts)
	ctx := context.Background()

	star := []interface{}{"id-star", "c9", int64(10_000_000)}
	mb, err := coord.Mutate(ctx, "pts", [][]interface{}{star}, false)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Applied != 1 {
		t.Fatalf("insert applied %d rows, want 1", mb.Applied)
	}
	resp, err := coord.Do(ctx, "pts", httpapi.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !containsKey(resp, RowKey(star)) {
		t.Fatalf("dominant inserted row missing from merged selection: %v", selectionKeys(resp))
	}

	if mb, err = coord.Mutate(ctx, "pts", [][]interface{}{star}, true); err != nil || mb.Applied != 1 {
		t.Fatalf("delete applied %d, err %v", mb.Applied, err)
	}
	if resp, err = coord.Do(ctx, "pts", httpapi.QueryRequest{}); err != nil {
		t.Fatal(err)
	}
	if containsKey(resp, RowKey(star)) {
		t.Fatal("deleted row still in merged selection")
	}
}

func containsKey(resp *diversification.Response, key string) bool {
	for _, have := range selectionKeys(resp) {
		if have == key {
			return true
		}
	}
	return false
}

// TestClusterRefreshMerges asserts the control-plane fan-out: refresh
// reports sum over shards with the worst mode.
func TestClusterRefreshMerges(t *testing.T) {
	rows := testRows(30)
	opts := testOpts(3, 0.5, diversification.MaxSum)
	coord, servers := newCluster(t, rows, 3, 0, opts)
	ctx := context.Background()
	info, err := coord.Refresh(ctx, "pts")
	if err != nil {
		t.Fatal(err)
	}
	if info.Answers != 30 {
		t.Fatalf("merged refresh reports %d answers, want 30", info.Answers)
	}
	if info.Mode != "rebuild" {
		t.Fatalf("cold cluster refresh mode %q, want rebuild", info.Mode)
	}
	servers[2].Close()
	if _, err := coord.Refresh(ctx, "pts"); err == nil {
		t.Fatal("refresh with dead shard succeeded; control-plane calls must not partially succeed silently")
	}
}

// TestClusterCachedMarker asserts shard-side result-cache hits surface in
// the merged response's cached marker — the OR contract.
func TestClusterCachedMarker(t *testing.T) {
	rows := testRows(30)
	opts := testOpts(3, 0.5, diversification.MaxSum)
	coord, _ := newCluster(t, rows, 2, 0, opts)
	ctx := context.Background()
	first, err := coord.Do(ctx, "pts", httpapi.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first merged solve claims cached")
	}
	second, err := coord.Do(ctx, "pts", httpapi.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical merge not marked cached despite shard result caches")
	}
	if math.Float64bits(first.Selection.Value) != math.Float64bits(second.Selection.Value) {
		t.Fatal("cached merge changed the answer")
	}
}

// TestClusterExplainTrailer asserts the truthfulness satellite: an explain
// in cluster mode records shard count, per-shard coreset sizes and the
// slowest shard.
func TestClusterExplainTrailer(t *testing.T) {
	rows := testRows(30)
	opts := testOpts(3, 0.5, diversification.MaxSum)
	coord, servers := newCluster(t, rows, 3, 0, opts)
	resp, err := coord.Do(context.Background(), "pts", httpapi.QueryRequest{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cluster:   3 shards", "coresets:  [", "slowest:   shard["} {
		if !strings.Contains(resp.Explain, want) {
			t.Fatalf("explain missing %q:\n%s", want, resp.Explain)
		}
	}
	servers[0].Close()
	resp, err = coord.Do(context.Background(), "pts", httpapi.QueryRequest{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Explain, "coresets:  [-") {
		t.Fatalf("explain does not mark the dead shard's coreset:\n%s", resp.Explain)
	}
}

// TestClusterRequestValidation pins the cluster-mode contract: request
// shapes without distributed semantics are typed argument errors, not
// silently wrong merges.
func TestClusterRequestValidation(t *testing.T) {
	rows := testRows(20)
	opts := testOpts(3, 0.5, diversification.MaxSum)
	coord, _ := newCluster(t, rows, 2, 0, opts)
	ctx := context.Background()
	mono, exact := "mono", "exact"
	cases := []struct {
		name string
		qr   httpapi.QueryRequest
	}{
		{"problem", httpapi.QueryRequest{Problem: "count"}},
		{"set", httpapi.QueryRequest{Set: [][]interface{}{{"id-0001", "c1", int64(1)}}}},
		{"constraints", httpapi.QueryRequest{Constraints: []string{"<(c1, c2), 1>"}}},
		{"scoring", httpapi.QueryRequest{RelevanceAttr: "rel"}},
		{"objective", httpapi.QueryRequest{Objective: &mono}},
		{"algorithm", httpapi.QueryRequest{Algorithm: &exact}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := coord.Do(ctx, "pts", tc.qr)
			var argErr *diversification.ArgError
			if err == nil || !errors.As(err, &argErr) {
				t.Fatalf("want ArgError, got %v", err)
			}
		})
	}
}

// TestShardOfDeterministicAndCovering pins the partition hash: stable
// keys, full bucket coverage at realistic sizes, and agreement between
// int-typed and int64-typed spellings of the same row (the loader inserts
// Go ints, the wire delivers int64s — they must route identically).
func TestShardOfDeterministicAndCovering(t *testing.T) {
	rows := testRows(200)
	for _, s := range []int{2, 4, 8} {
		hit := make([]int, s)
		for _, row := range rows {
			i := ShardOf(row, s)
			if i != ShardOf(row, s) {
				t.Fatal("ShardOf not deterministic")
			}
			hit[i]++
		}
		for i, c := range hit {
			if c == 0 {
				t.Fatalf("S=%d: shard %d owns no rows of 200", s, i)
			}
		}
	}
	a := []interface{}{"x", "c1", int(42)}
	b := []interface{}{"x", "c1", int64(42)}
	if ShardOf(a, 8) != ShardOf(b, 8) || RowKey(a) != RowKey(b) {
		t.Fatal("int and int64 spellings of a row must route to the same shard")
	}
}
