package solver

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/relation"
)

// fuzzSearchInstance decodes the fuzz input into a small exact-search
// instance: up to 10 two-column integer points, a kind, a λ, a k, and a
// split depth. Never fails; malformed inputs wrap around.
func fuzzSearchInstance(data []byte) (mk func() *core.Instance, depth int) {
	if len(data) < 5 {
		return nil, 0
	}
	n := 3 + int(data[0])%8
	kind := objective.Kind(int(data[1]) % 3)
	lambda := float64(data[2]%101) / 100
	k := 1 + int(data[3])%5
	depth = int(data[4]) % 4 // 0 = auto
	rest := data[5:]
	at := func(i int) int64 {
		if len(rest) == 0 {
			return int64(i * 3)
		}
		return int64(int8(rest[i%len(rest)]))
	}
	return func() *core.Instance {
		r := relation.NewRelation(relation.NewSchema("P", "x", "y"))
		for i := 0; i < n; i++ {
			r.Insert(relation.Ints(at(2*i), at(2*i+1)))
		}
		db := relation.NewDatabase().Add(r)
		obj := objective.New(kind, objective.AttrRelevance(0, 1), objective.EuclideanDistance(), lambda)
		in := &core.Instance{Query: nil, DB: db, Obj: obj, K: k}
		in.SetAnswers(r.Sorted())
		in.ParallelDepth = depth
		return in
	}, depth
}

// FuzzSearchParallelSeq asserts the tentpole acceptance criterion under
// adversarial inputs: the parallel branch-and-bound must return identical
// sets and scores to the sequential search — best set, first witness and
// counts alike — across random instances, objectives, λ and split depths.
func FuzzSearchParallelSeq(f *testing.F) {
	f.Add([]byte{8, 0, 50, 3, 2, 9, 3, 7, 2, 8, 6, 4, 1, 0, 12})
	f.Add([]byte{9, 1, 100, 4, 1, 250, 3, 17, 99, 5, 5, 5, 6, 120, 0})
	f.Add([]byte{6, 2, 25, 2, 3, 1, 2, 3, 4, 9, 9, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		mk, _ := fuzzSearchInstance(data)
		if mk == nil {
			return
		}
		ctx := context.Background()
		seqIn, parIn := mk(), mk()
		parIn.Parallelism = 4

		seqBest, err := QRDBestContext(ctx, seqIn)
		if err != nil {
			t.Fatal(err)
		}
		parBest, err := QRDBestContext(ctx, parIn)
		if err != nil {
			t.Fatal(err)
		}
		if seqBest.Exists != parBest.Exists || seqBest.Value != parBest.Value {
			t.Fatalf("best: parallel (%v, %v) != sequential (%v, %v)",
				parBest.Exists, parBest.Value, seqBest.Exists, seqBest.Value)
		}
		if len(seqBest.Witness) != len(parBest.Witness) {
			t.Fatalf("best witness length %d != %d", len(parBest.Witness), len(seqBest.Witness))
		}
		for i := range seqBest.Witness {
			if !seqBest.Witness[i].Equal(parBest.Witness[i]) {
				t.Fatalf("best witness[%d]: parallel %v != sequential %v",
					i, parBest.Witness[i], seqBest.Witness[i])
			}
		}

		// Decision and counting at bounds straddling the optimum.
		for _, b := range []float64{0, seqBest.Value * 0.5, seqBest.Value, seqBest.Value + 1} {
			seqIn.B, parIn.B = b, b
			seqQ, err := QRDExactContext(ctx, seqIn)
			if err != nil {
				t.Fatal(err)
			}
			parQ, err := QRDExactContext(ctx, parIn)
			if err != nil {
				t.Fatal(err)
			}
			if seqQ.Exists != parQ.Exists || seqQ.Value != parQ.Value {
				t.Fatalf("qrd(B=%v): parallel (%v, %v) != sequential (%v, %v)",
					b, parQ.Exists, parQ.Value, seqQ.Exists, seqQ.Value)
			}
			for i := range seqQ.Witness {
				if !seqQ.Witness[i].Equal(parQ.Witness[i]) {
					t.Fatalf("qrd(B=%v) witness[%d]: parallel %v != sequential %v",
						b, i, parQ.Witness[i], seqQ.Witness[i])
				}
			}
			seqC, err := RDCExactContext(ctx, seqIn)
			if err != nil {
				t.Fatal(err)
			}
			parC, err := RDCExactContext(ctx, parIn)
			if err != nil {
				t.Fatal(err)
			}
			if seqC.Count.Cmp(parC.Count) != 0 {
				t.Fatalf("rdc(B=%v): parallel %v != sequential %v", b, parC.Count, seqC.Count)
			}
		}

		// Ranking the first k answers.
		if seqBest.Exists {
			u := append([]relation.Tuple(nil), seqIn.Answers()[:seqIn.K]...)
			for _, r := range []int{1, 2, 1 << 20} {
				seqIn.U, parIn.U = u, u
				seqIn.R, parIn.R = r, r
				seqD, err := DRPExactContext(ctx, seqIn)
				if err != nil {
					t.Fatal(err)
				}
				parD, err := DRPExactContext(ctx, parIn)
				if err != nil {
					t.Fatal(err)
				}
				if seqD.InTopR != parD.InTopR || seqD.Better != parD.Better || seqD.FU != parD.FU {
					t.Fatalf("drp(r=%d): parallel (%v, %d, %v) != sequential (%v, %d, %v)",
						r, parD.InTopR, parD.Better, parD.FU, seqD.InTopR, seqD.Better, seqD.FU)
				}
			}
		}
	})
}
