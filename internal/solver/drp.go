package solver

import (
	"context"
	"errors"
	"math/big"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/subset"
)

// DRPResult is the outcome of a diversity-ranking decision: rank(U) <= r
// holds iff fewer than r candidate sets score strictly above F(U)
// (Section 4.1 defines rank(U) = 1 + #{S : F(S) > F(U)}).
type DRPResult struct {
	InTopR bool
	// Better is the number of candidate sets with F(S) > F(U), capped at r
	// (the decision never needs more).
	Better int
	// FU is F(U), the score of the assessed set.
	FU    float64
	Stats Stats
}

// DRPExact decides DRP(LQ, F) by counting candidate sets that strictly beat
// F(U), stopping as soon as r are found. The candidate set U itself must be
// a candidate for (Q, D, [Σ,] k); if it is not, the decision is trivially
// false (rank is undefined), reported via the error.
func DRPExact(in *core.Instance) (DRPResult, error) {
	return DRPExactContext(context.Background(), in)
}

// DRPExactContext is DRPExact under a cancellation context; a cancelled run
// returns ctx's error and an unreliable partial count.
func DRPExactContext(ctx context.Context, in *core.Instance) (DRPResult, error) {
	var res DRPResult
	if _, err := in.AnswersContext(ctx); err != nil {
		return res, err
	}
	if !in.IsCandidate(in.U) {
		return res, errors.New("solver: U is not a candidate set for (Q, D, k)")
	}
	res.FU = in.Eval(in.U)
	if w := parallelism(in); w > 1 {
		better, ok, err := drpCountParallel(ctx, in, res.FU, &res.Stats, w)
		res.Better = better // partial on cancellation, as sequentially
		if !ok {
			return res, err
		}
		res.InTopR = res.Better < in.R
		return res, nil
	}
	s := newSearch(ctx, in, res.FU, true, &res.Stats, func(sel []int, f float64) bool {
		res.Better++
		return res.Better < in.R // stop once rank(U) > r is certain
	})
	s.run()
	if s.canceled {
		return res, ctx.Err()
	}
	res.InTopR = res.Better < in.R
	return res, nil
}

// DRPMonoPTime decides DRP(LQ, Fmono) for a fixed query in polynomial time —
// Theorem 6.4. Fmono is modular, so the top-r candidate sets by score are
// exactly the top-r k-subsets by score sum; we enumerate them best-first
// (the paper's FindNext one-tuple-replacement strategy realized as a ranked
// heap search) and stop after at most r sets or when scores drop to F(U).
//
// As the paper notes, this is polynomial for constant r (and
// pseudo-polynomial when r is a binary-encoded input); it refuses
// constrained instances (Thm 9.3).
func DRPMonoPTime(in *core.Instance) (DRPResult, error) {
	var res DRPResult
	if in.Obj.Kind != objective.Mono {
		return res, errors.New("solver: DRPMonoPTime requires the mono objective")
	}
	if in.Sigma.Len() > 0 {
		return res, ErrConstrained
	}
	if !in.IsCandidate(in.U) {
		return res, errors.New("solver: U is not a candidate set for (Q, D, k)")
	}
	answers := in.Answers()
	res.Stats.Answers = len(answers)
	res.FU = in.Eval(in.U)
	ranked := subset.NewRanked(monoScores(in), in.K)
	for res.Better < in.R {
		_, sum, ok := ranked.Next()
		if !ok {
			break
		}
		res.Stats.Leaves++
		if sum <= res.FU+floatSlack(res.FU) {
			break // no further set can strictly beat F(U)
		}
		res.Better++
	}
	res.InTopR = res.Better < in.R
	return res, nil
}

// floatSlack returns a magnitude-relative tolerance: the ranked enumeration
// recomputes F(U) as a score sum whose floating-point rounding may differ
// from Eval's, so "strictly greater" is taken up to this slack.
func floatSlack(x float64) float64 {
	if x < 0 {
		x = -x
	}
	return 1e-9 * (1 + x)
}

// DRPRelevanceOnlyPTime decides DRP for λ=0 with a fixed query — the PTIME
// cases of Theorem 8.2:
//
//	FMS, λ=0: modular ((k-1)·Σ δrel), so ranked enumeration applies as for
//	          Fmono.
//	FMM, λ=0: F(S) = min δrel over S. Candidate sets beating F(U) are the
//	          k-subsets of {t : δrel(t) > F(U)}, counted as C(cnt, k) in FP.
func DRPRelevanceOnlyPTime(in *core.Instance) (DRPResult, error) {
	var res DRPResult
	if in.Obj.Lambda != 0 {
		return res, errors.New("solver: DRPRelevanceOnlyPTime requires λ=0")
	}
	if in.Sigma.Len() > 0 {
		return res, ErrConstrained
	}
	if !in.IsCandidate(in.U) {
		return res, errors.New("solver: U is not a candidate set for (Q, D, k)")
	}
	answers := in.Answers()
	res.Stats.Answers = len(answers)
	res.FU = in.Eval(in.U)
	switch in.Obj.Kind {
	case objective.Mono:
		return DRPMonoPTime(in)
	case objective.MaxSum:
		// (k-1)(1-0)·δrel per tuple: FMS is modular at λ=0.
		scores := relScores(in)
		for i := range scores {
			scores[i] = float64(in.K-1) * scores[i]
		}
		ranked := subset.NewRanked(scores, in.K)
		for res.Better < in.R {
			_, sum, ok := ranked.Next()
			if !ok {
				break
			}
			res.Stats.Leaves++
			if sum <= res.FU+floatSlack(res.FU) {
				break
			}
			res.Better++
		}
		res.InTopR = res.Better < in.R
		return res, nil
	case objective.MaxMin:
		cnt := 0
		for _, r := range relScores(in) {
			if r > res.FU {
				cnt++
			}
		}
		better := subset.Count(cnt, in.K)
		res.InTopR = better.Cmp(big.NewInt(int64(in.R))) < 0
		if better.IsInt64() {
			b := better.Int64()
			if b > int64(in.R) {
				b = int64(in.R)
			}
			res.Better = int(b)
		} else {
			res.Better = in.R
		}
		return res, nil
	default:
		return res, errors.New("solver: unknown objective")
	}
}
