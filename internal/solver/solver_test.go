package solver

import (
	"context"
	"math"
	"math/big"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/subset"
	"repro/internal/value"
)

// identityInstance builds an instance over an identity query whose answer
// set is exactly the given single-column integer tuples.
func identityInstance(xs []int64, obj *objective.Objective, k int, b float64) *core.Instance {
	r := relation.NewRelation(relation.NewSchema("R", "x"))
	for _, x := range xs {
		r.Insert(relation.Ints(x))
	}
	db := relation.NewDatabase().Add(r)
	return &core.Instance{
		Query: query.IdentityQuery("R", 1),
		DB:    db,
		Obj:   obj,
		K:     k,
		B:     b,
	}
}

// bruteCount counts valid sets by direct enumeration without any pruning —
// the reference for every solver test.
func bruteCount(in *core.Instance, strict bool, cutoff float64) int {
	answers := in.Answers()
	count := 0
	subset.ForEach(len(answers), in.K, func(idx []int) bool {
		u := make([]relation.Tuple, len(idx))
		for i, j := range idx {
			u[i] = answers[j]
		}
		f := in.Eval(u)
		ok := f >= cutoff
		if strict {
			ok = f > cutoff
		}
		if ok && in.SatisfiesConstraints(u) {
			count++
		}
		return true
	})
	return count
}

func hamming() objective.Distance { return objective.HammingDistance() }

func attrRel() objective.Relevance { return objective.AttrRelevance(0, 1) }

func TestQRDExactFindsWitness(t *testing.T) {
	obj := objective.New(objective.MaxSum, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1, 2, 3, 4, 5}, obj, 3, 1)
	res := QRDExact(in)
	if !res.Exists {
		t.Fatal("expected a valid set")
	}
	if !in.IsValid(res.Witness) {
		t.Errorf("witness %v is not valid", res.Witness)
	}
	if math.Abs(in.Eval(res.Witness)-res.Value) > 1e-9 {
		t.Errorf("reported value %v != evaluated %v", res.Value, in.Eval(res.Witness))
	}
}

func TestQRDExactUnsatisfiableBound(t *testing.T) {
	obj := objective.New(objective.MaxSum, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1, 2, 3}, obj, 2, 1e9)
	if res := QRDExact(in); res.Exists {
		t.Error("bound 1e9 should be unreachable")
	}
}

func TestQRDExactKTooLarge(t *testing.T) {
	obj := objective.New(objective.MaxMin, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1, 2}, obj, 5, 0)
	if res := QRDExact(in); res.Exists {
		t.Error("k > |Q(D)| has no candidate sets")
	}
}

func TestQRDExactAgreesWithBruteForceAcrossObjectives(t *testing.T) {
	xs := []int64{1, 3, 5, 7, 9, 11}
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		for _, lambda := range []float64{0, 0.5, 1} {
			obj := objective.New(kind, attrRel(), hamming(), lambda)
			for _, b := range []float64{0, 1, 5, 20, 100} {
				in := identityInstance(xs, obj, 3, b)
				got := QRDExact(in).Exists
				want := bruteCount(in, false, b) > 0
				if got != want {
					t.Errorf("%v λ=%v B=%v: exact=%v brute=%v", kind, lambda, b, got, want)
				}
			}
		}
	}
}

func TestQRDMonoPTimeMatchesExact(t *testing.T) {
	obj := objective.New(objective.Mono, attrRel(), hamming(), 0.7)
	for _, b := range []float64{0, 3, 10, 50} {
		in := identityInstance([]int64{2, 4, 6, 8, 10}, obj, 2, b)
		fast, err := QRDMonoPTime(in)
		if err != nil {
			t.Fatal(err)
		}
		slow := QRDExact(in)
		if fast.Exists != slow.Exists {
			t.Errorf("B=%v: ptime=%v exact=%v", b, fast.Exists, slow.Exists)
		}
		if fast.Exists && !in.IsValid(fast.Witness) {
			t.Errorf("B=%v: ptime witness invalid", b)
		}
	}
}

func TestQRDMonoPTimeRejectsWrongObjective(t *testing.T) {
	obj := objective.New(objective.MaxSum, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1, 2}, obj, 1, 0)
	if _, err := QRDMonoPTime(in); err == nil {
		t.Error("should reject non-mono objective")
	}
}

func TestQRDMonoPTimeRejectsConstraints(t *testing.T) {
	obj := objective.New(objective.Mono, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1, 2, 3}, obj, 2, 0)
	in.Sigma = compat.NewSet(2)
	in.Sigma.MustAdd(compat.MustParse(`exists s (s.x1 = 1)`))
	if _, err := QRDMonoPTime(in); err != ErrConstrained {
		t.Errorf("want ErrConstrained, got %v", err)
	}
}

func TestQRDRelevanceOnlyPTimeMatchesExact(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7}
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		obj := objective.New(kind, attrRel(), hamming(), 0)
		for _, b := range []float64{0, 4, 8, 15, 40} {
			in := identityInstance(xs, obj, 2, b)
			fast, err := QRDRelevanceOnlyPTime(in)
			if err != nil {
				t.Fatal(err)
			}
			slow := QRDExact(in)
			if fast.Exists != slow.Exists {
				t.Errorf("%v B=%v: ptime=%v exact=%v", kind, b, fast.Exists, slow.Exists)
			}
		}
	}
}

func TestQRDRelevanceOnlyRequiresLambdaZero(t *testing.T) {
	obj := objective.New(objective.MaxSum, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1}, obj, 1, 0)
	if _, err := QRDRelevanceOnlyPTime(in); err == nil {
		t.Error("should reject λ>0")
	}
}

func TestQRDBestIsMaximum(t *testing.T) {
	xs := []int64{1, 2, 6, 9}
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		obj := objective.New(kind, attrRel(), hamming(), 0.4)
		in := identityInstance(xs, obj, 2, 0)
		best := QRDBest(in)
		if !best.Exists {
			t.Fatalf("%v: no best set found", kind)
		}
		// Brute force the true maximum.
		answers := in.Answers()
		max := math.Inf(-1)
		subset.ForEach(len(answers), in.K, func(idx []int) bool {
			u := []relation.Tuple{answers[idx[0]], answers[idx[1]]}
			if f := in.Eval(u); f > max {
				max = f
			}
			return true
		})
		if math.Abs(best.Value-max) > 1e-9 {
			t.Errorf("%v: best=%v, true max=%v", kind, best.Value, max)
		}
	}
}

func TestQRDWithConstraints(t *testing.T) {
	// Valid sets must contain x=1 whenever they contain x=2.
	obj := objective.New(objective.MaxSum, objective.ConstRelevance(1), hamming(), 1)
	in := identityInstance([]int64{1, 2, 3}, obj, 2, 2) // any 2 distinct tuples score 2·1·...
	in.Sigma = compat.NewSet(2)
	in.Sigma.MustAdd(compat.MustParse(`forall t (t.x1 = 2 -> exists s (s.x1 = 1))`))
	res := QRDExact(in)
	if !res.Exists {
		t.Fatal("constrained instance should still have valid sets")
	}
	if !in.SatisfiesConstraints(res.Witness) {
		t.Errorf("witness %v violates constraints", res.Witness)
	}
	// Force the violating pair {2,3} to be the only high scorer and check it
	// is excluded: distance table makes {2,3} the unique top pair.
	td := objective.NewTableDistance(0)
	td.Set(relation.Ints(2), relation.Ints(3), 10)
	obj2 := objective.New(objective.MaxSum, objective.ConstRelevance(0), td, 1)
	in2 := identityInstance([]int64{1, 2, 3}, obj2, 2, 15)
	in2.Sigma = in.Sigma
	if res := QRDExact(in2); res.Exists {
		t.Error("only {2,3} reaches B=15 but violates Σ; QRD must say no")
	}
}

func TestDRPExactRanks(t *testing.T) {
	// Scores: {9,7}=16·(k-1)=16, ... use λ=0 FMS: F(U) = (k-1)·Σ rel = Σ rel.
	obj := objective.New(objective.MaxSum, attrRel(), nil, 0)
	xs := []int64{9, 7, 5, 3}
	// Candidate sets of size 2 by F: {9,7}=16, {9,5}=14, {9,3}=12, {7,5}=12,
	// {7,3}=10, {5,3}=8.
	cases := []struct {
		u      []int64
		r      int
		inTopR bool
	}{
		{[]int64{9, 7}, 1, true},
		{[]int64{9, 5}, 1, false},
		{[]int64{9, 5}, 2, true},
		{[]int64{9, 3}, 2, false},
		{[]int64{9, 3}, 3, true},  // two sets beat 12
		{[]int64{7, 5}, 3, true},  // ties do not count as better
		{[]int64{5, 3}, 5, false}, // five sets beat 8
		{[]int64{5, 3}, 6, true},
	}
	for _, c := range cases {
		in := identityInstance(xs, obj, 2, 0)
		in.R = c.r
		in.U = []relation.Tuple{relation.Ints(c.u[0]), relation.Ints(c.u[1])}
		res, err := DRPExact(in)
		if err != nil {
			t.Fatalf("u=%v r=%d: %v", c.u, c.r, err)
		}
		if res.InTopR != c.inTopR {
			t.Errorf("u=%v r=%d: got %v (better=%d), want %v", c.u, c.r, res.InTopR, res.Better, c.inTopR)
		}
	}
}

func TestDRPExactRejectsNonCandidate(t *testing.T) {
	obj := objective.New(objective.MaxSum, attrRel(), nil, 0)
	in := identityInstance([]int64{1, 2}, obj, 2, 0)
	in.R = 1
	in.U = []relation.Tuple{relation.Ints(1), relation.Ints(99)}
	if _, err := DRPExact(in); err == nil {
		t.Error("U ⊄ Q(D) must be rejected")
	}
	in.U = []relation.Tuple{relation.Ints(1)}
	if _, err := DRPExact(in); err == nil {
		t.Error("|U| != k must be rejected")
	}
	in.U = []relation.Tuple{relation.Ints(1), relation.Ints(1)}
	if _, err := DRPExact(in); err == nil {
		t.Error("multiset U must be rejected")
	}
}

func TestDRPMonoPTimeMatchesExact(t *testing.T) {
	obj := objective.New(objective.Mono, attrRel(), hamming(), 0.6)
	xs := []int64{2, 4, 6, 8, 10, 12}
	in0 := identityInstance(xs, obj, 3, 0)
	answers := in0.Answers()
	// Assess every candidate set at several ranks.
	subset.ForEach(len(answers), 3, func(idx []int) bool {
		u := []relation.Tuple{answers[idx[0]], answers[idx[1]], answers[idx[2]]}
		for _, r := range []int{1, 3, 10, 25} {
			in := identityInstance(xs, obj, 3, 0)
			in.R = r
			in.U = u
			fast, err := DRPMonoPTime(in)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := DRPExact(in)
			if err != nil {
				t.Fatal(err)
			}
			if fast.InTopR != slow.InTopR {
				t.Errorf("u=%v r=%d: ptime=%v exact=%v", u, r, fast.InTopR, slow.InTopR)
			}
		}
		return true
	})
}

func TestDRPRelevanceOnlyPTimeMatchesExact(t *testing.T) {
	xs := []int64{3, 5, 5, 7, 9} // includes a duplicate-relevance pair
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		obj := objective.New(kind, attrRel(), hamming(), 0)
		in0 := identityInstance(xs, obj, 2, 0)
		answers := in0.Answers()
		subset.ForEach(len(answers), 2, func(idx []int) bool {
			u := []relation.Tuple{answers[idx[0]], answers[idx[1]]}
			for _, r := range []int{1, 2, 4, 8} {
				in := identityInstance(xs, obj, 2, 0)
				in.R = r
				in.U = u
				fast, err := DRPRelevanceOnlyPTime(in)
				if err != nil {
					t.Fatal(err)
				}
				slow, err := DRPExact(in)
				if err != nil {
					t.Fatal(err)
				}
				if fast.InTopR != slow.InTopR {
					t.Errorf("%v u=%v r=%d: ptime=%v exact=%v", kind, u, r, fast.InTopR, slow.InTopR)
				}
			}
			return true
		})
	}
}

func TestRDCExactCountsMatchBruteForce(t *testing.T) {
	xs := []int64{1, 2, 4, 8, 16}
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		for _, lambda := range []float64{0, 0.5, 1} {
			obj := objective.New(kind, attrRel(), hamming(), lambda)
			for _, b := range []float64{0, 2, 6, 18, 60} {
				in := identityInstance(xs, obj, 3, b)
				got := RDCExact(in).Count.Int64()
				want := int64(bruteCount(in, false, b))
				if got != want {
					t.Errorf("%v λ=%v B=%v: exact=%d brute=%d", kind, lambda, b, got, want)
				}
			}
		}
	}
}

func TestRDCExactWithConstraints(t *testing.T) {
	obj := objective.New(objective.MaxSum, objective.ConstRelevance(1), nil, 0)
	in := identityInstance([]int64{1, 2, 3, 4}, obj, 2, 0)
	in.Sigma = compat.NewSet(2)
	// Any chosen set must include x=1.
	in.Sigma.MustAdd(compat.MustParse(`exists s (s.x1 = 1)`))
	got := RDCExact(in).Count.Int64()
	if got != 3 { // {1,2},{1,3},{1,4}
		t.Errorf("constrained count = %d, want 3", got)
	}
}

func TestRDCMaxMinRelevanceOnlyFP(t *testing.T) {
	obj := objective.New(objective.MaxMin, attrRel(), hamming(), 0)
	for _, b := range []float64{0, 3, 5, 9, 11} {
		in := identityInstance([]int64{1, 3, 5, 7, 9}, obj, 2, b)
		fast, err := RDCMaxMinRelevanceOnlyFP(in)
		if err != nil {
			t.Fatal(err)
		}
		slow := RDCExact(in)
		if fast.Count.Cmp(slow.Count) != 0 {
			t.Errorf("B=%v: FP=%v exact=%v", b, fast.Count, slow.Count)
		}
	}
}

func TestRDCMaxMinRelevanceOnlyFPRejects(t *testing.T) {
	obj := objective.New(objective.MaxMin, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1}, obj, 1, 0)
	if _, err := RDCMaxMinRelevanceOnlyFP(in); err == nil {
		t.Error("λ>0 must be rejected")
	}
}

func TestRDCModularDPMatchesExact(t *testing.T) {
	// Integer scores: relevance = x (ints), λ=0 mono.
	obj := objective.New(objective.Mono, attrRel(), nil, 0)
	for _, b := range []float64{0, 5, 10, 17, 100} {
		in := identityInstance([]int64{1, 2, 3, 4, 5, 6}, obj, 3, b)
		dp, err := RDCModularDP(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		slow := RDCExact(in)
		if dp.Count.Cmp(slow.Count) != 0 {
			t.Errorf("B=%v: dp=%v exact=%v", b, dp.Count, slow.Count)
		}
	}
}

func TestRDCModularDPRejectsNonIntegerScores(t *testing.T) {
	obj := objective.New(objective.Mono, objective.RelevanceFunc(func(relation.Tuple) float64 {
		return 0.3333333
	}), nil, 0)
	in := identityInstance([]int64{1, 2}, obj, 1, 0)
	if _, err := RDCModularDP(in, 1); err == nil {
		t.Error("non-integer scores must be rejected")
	}
}

func TestRDCTuringReduce(t *testing.T) {
	// Count sets whose relevance sum is exactly 7 with k=2 over {1..6}:
	// {1,6},{2,5},{3,4} -> 3. λ=0 mono scores are the values themselves.
	obj := objective.New(objective.Mono, attrRel(), nil, 0)
	in := identityInstance([]int64{1, 2, 3, 4, 5, 6}, obj, 2, 0)
	got := RDCTuringReduce(in, 7, 0.5, RDCExact)
	if got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("exact-sum count = %v, want 3", got)
	}
}

func TestSearchPruningIsLossless(t *testing.T) {
	// Property: with random integer data, pruned exact counting equals
	// brute-force counting for all three objectives.
	f := func(raw [7]int8, kRaw, bRaw uint8) bool {
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v%10) + 10 // keep values positive and small
		}
		k := int(kRaw)%4 + 1
		b := float64(bRaw % 64)
		for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
			obj := objective.New(kind, attrRel(), hamming(), 0.5)
			in := identityInstance(xs, obj, k, b)
			if RDCExact(in).Count.Int64() != int64(bruteCount(in, false, b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	obj := objective.New(objective.MaxSum, attrRel(), hamming(), 0.5)
	in := identityInstance([]int64{1, 2, 3, 4}, obj, 2, 0)
	res := QRDExact(in)
	if res.Stats.Answers != 4 || res.Stats.Nodes == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

func TestQRDOnNonIdentityQuery(t *testing.T) {
	// QRD over a CQ with a join: Q(x, y) :- R(x, y), S(y).
	r := relation.NewRelation(relation.NewSchema("R", "a", "b"))
	r.InsertAll(relation.Ints(1, 2), relation.Ints(3, 4), relation.Ints(5, 6))
	s := relation.NewRelation(relation.NewSchema("S", "b"))
	s.InsertAll(relation.Ints(2), relation.Ints(6))
	db := relation.NewDatabase().Add(r).Add(s)
	q := query.MustNew("Q", []string{"x", "y"}, &query.And{Fs: []query.Formula{
		&query.Atom{Rel: "R", Args: []query.Term{query.V("x"), query.V("y")}},
		&query.Atom{Rel: "S", Args: []query.Term{query.V("y")}},
	}})
	obj := objective.New(objective.MaxSum, objective.ConstRelevance(1), hamming(), 0.5)
	in := &core.Instance{Query: q, DB: db, Obj: obj, K: 2, B: 0}
	res := QRDExact(in)
	if !res.Exists {
		t.Fatal("join query instance should have a valid set")
	}
	if len(in.Answers()) != 2 {
		t.Errorf("|Q(D)| = %d, want 2", len(in.Answers()))
	}
}

func TestValueHelperUnused(t *testing.T) {
	// Guard against regressions in the float tolerance helper.
	if floatSlack(0) <= 0 || floatSlack(-100) <= 0 {
		t.Error("floatSlack must be positive")
	}
	_ = value.Int(0) // keep the import exercised alongside relation helpers
}

// TestContextCancelsExactSearch exercises the ctx plumbing of the subset
// search directly: a flat 55-choose-12 enumeration (nothing prunes) must
// stop shortly after the deadline with the context's error, for all three
// exact procedures.
func TestContextCancelsExactSearch(t *testing.T) {
	xs := make([]int64, 55)
	for i := range xs {
		xs[i] = int64(i)
	}
	in := identityInstance(xs, objective.New(objective.MaxSum, nil, nil, 0.5), 12, 0)

	t.Run("RDCExactContext", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		start := time.Now()
		res, err := RDCExactContext(ctx, in)
		if err != context.DeadlineExceeded {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("cancellation did not stop the search promptly")
		}
		if res.Stats.Explored {
			t.Error("a cancelled search must not report Explored")
		}
	})
	t.Run("QRDBestContext", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		start := time.Now()
		if _, err := QRDBestContext(ctx, in); err != context.DeadlineExceeded {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("cancellation did not stop the search promptly")
		}
	})
	t.Run("DRPExactContext", func(t *testing.T) {
		// Varying relevance: with a flat objective no set strictly beats
		// F(U) and the strict bound prunes the whole tree at the root; an
		// irregular δrel (with one large outlier inflating the optimistic
		// bound) keeps the enumeration honest.
		rel := objective.RelevanceFunc(func(t relation.Tuple) float64 {
			x := t[0].AsInt()
			if x == 54 {
				return 1000
			}
			return 1 + float64(x%13)*0.001
		})
		drp := identityInstance(xs, objective.New(objective.MaxSum, rel, nil, 0.5), 12, 0)
		drp.R = 1 << 60 // count (nearly) all better sets: no early stop
		for i := 0; i < 12; i++ {
			drp.U = append(drp.U, relation.Ints(int64(i)))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		start := time.Now()
		if _, err := DRPExactContext(ctx, drp); err != context.DeadlineExceeded {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Error("cancellation did not stop the search promptly")
		}
	})

	// A background context never cancels and agrees with the legacy entry
	// points on a small instance.
	small := identityInstance(xs[:10], objective.New(objective.MaxSum, nil, nil, 0.5), 3, 0)
	got, err := RDCExactContext(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if want := RDCExact(small).Count; got.Count.Cmp(want) != 0 {
		t.Errorf("context variant count %v != legacy %v", got.Count, want)
	}
}
