package solver

import (
	"context"
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/relation"
)

// ErrConstrained is returned by the PTIME special-case procedures when the
// instance carries compatibility constraints: Section 9 shows exactly those
// tractable cells become intractable under Cm, so the shortcuts do not
// apply and callers must fall back to the exact solvers.
var ErrConstrained = errors.New("solver: PTIME procedure does not apply under compatibility constraints (Thm 9.3)")

// QRDResult is the outcome of a QRD decision.
type QRDResult struct {
	Exists  bool
	Witness []relation.Tuple // a valid set when Exists
	Value   float64          // F(Witness)
	Stats   Stats
}

// QRDExact decides QRD(LQ, F) by exhaustive search over candidate sets with
// admissible upper-bound pruning, stopping at the first valid set. It
// realizes the guess-and-check procedures behind the paper's NP/PSPACE upper
// bounds (Thm 5.1, 5.2) and works in every setting, including under
// compatibility constraints (Cor 9.2).
func QRDExact(in *core.Instance) QRDResult {
	res, _ := QRDExactContext(context.Background(), in)
	return res
}

// QRDExactContext is QRDExact under a cancellation context: both the
// evaluation of Q(D) and the exponential subset search poll ctx and abort
// with its error, leaving the result unreliable.
func QRDExactContext(ctx context.Context, in *core.Instance) (QRDResult, error) {
	var res QRDResult
	if _, err := in.AnswersContext(ctx); err != nil {
		return res, err
	}
	if w := parallelism(in); w > 1 {
		return qrdExactParallel(ctx, in, w)
	}
	s := newSearch(ctx, in, in.B, false, &res.Stats, func(sel []int, f float64) bool {
		res.Exists = true
		res.Value = f
		res.Witness = make([]relation.Tuple, len(sel))
		for i, idx := range sel {
			res.Witness[i] = in.Answers()[idx]
		}
		return false // stop at first witness
	})
	s.run()
	if s.canceled {
		return res, ctx.Err()
	}
	return res, nil
}

// QRDMonoPTime decides QRD(LQ, Fmono) for a fixed query — the PTIME
// data-complexity algorithm of Theorem 5.4: compute Q(D), compute the
// per-tuple score v(t), and compare the sum of the k largest scores with B.
// Fmono's modularity (Fmono(U) = Σ_{t∈U} v(t)) makes the greedy choice
// optimal. Fails with ErrConstrained when Σ is present.
func QRDMonoPTime(in *core.Instance) (QRDResult, error) {
	var res QRDResult
	if in.Obj.Kind != objective.Mono {
		return res, errors.New("solver: QRDMonoPTime requires the mono objective")
	}
	if in.Sigma.Len() > 0 {
		return res, ErrConstrained
	}
	answers := in.Answers()
	res.Stats.Answers = len(answers)
	if len(answers) < in.K {
		return res, nil
	}
	scores := monoScores(in)
	order := sortedByScore(scores)
	sum := 0.0
	witness := make([]relation.Tuple, 0, in.K)
	for i := 0; i < in.K; i++ {
		sum += scores[order[i]]
		witness = append(witness, answers[order[i]])
	}
	res.Value = sum
	if sum >= in.B {
		res.Exists = true
		res.Witness = witness
	}
	return res, nil
}

// QRDRelevanceOnlyPTime decides QRD for λ=0 (relevance-only objectives) with
// a fixed query — the PTIME data-complexity algorithms of Theorem 8.2:
//
//	FMS, λ=0: F(U) = (k-1)·Σ δrel(t); maximized by the k most relevant
//	          answers, so compare (k-1)·top-k-sum with B.
//	FMM, λ=0: F(U) = min δrel(t); maximized by the k most relevant answers,
//	          so compare the k-th largest relevance with B.
//
// Fails with ErrConstrained when Σ is present (Cor 9.5).
func QRDRelevanceOnlyPTime(in *core.Instance) (QRDResult, error) {
	var res QRDResult
	if in.Obj.Lambda != 0 {
		return res, errors.New("solver: QRDRelevanceOnlyPTime requires λ=0")
	}
	if in.Obj.Kind == objective.Mono {
		return QRDMonoPTime(in) // λ=0 mono is modular too
	}
	if in.Sigma.Len() > 0 {
		return res, ErrConstrained
	}
	answers := in.Answers()
	res.Stats.Answers = len(answers)
	if len(answers) < in.K {
		return res, nil
	}
	rels := relScores(in)
	order := sortedByScore(rels)
	witness := make([]relation.Tuple, in.K)
	sum := 0.0
	kth := 0.0
	for i := 0; i < in.K; i++ {
		witness[i] = answers[order[i]]
		sum += rels[order[i]]
		kth = rels[order[i]]
	}
	switch in.Obj.Kind {
	case objective.MaxSum:
		res.Value = float64(in.K-1) * sum
	case objective.MaxMin:
		res.Value = kth
	}
	if res.Value >= in.B {
		res.Exists = true
		res.Witness = witness
	}
	return res, nil
}

// QRDBest finds a maximum-F candidate set (the optimization version of
// diversification from Section 3), by exact search. It prunes with a rising
// incumbent bound. Returns Exists=false when no candidate set exists (e.g.
// k > |Q(D)| or constraints unsatisfiable).
func QRDBest(in *core.Instance) QRDResult {
	res, _ := QRDBestContext(context.Background(), in)
	return res
}

// QRDBestContext is QRDBest under a cancellation context. A cancelled run
// returns ctx's error; the partial incumbent (if any) is in the result but
// carries no optimality guarantee.
func QRDBestContext(ctx context.Context, in *core.Instance) (QRDResult, error) {
	var res QRDResult
	if _, err := in.AnswersContext(ctx); err != nil {
		return res, err
	}
	if w := parallelism(in); w > 1 {
		return qrdBestParallel(ctx, in, w)
	}
	var s *search
	s = newSearch(ctx, in, 0, false, &res.Stats, func(sel []int, f float64) bool {
		if !res.Exists || f > res.Value {
			res.Exists = true
			res.Value = f
			res.Witness = make([]relation.Tuple, len(sel))
			for i, idx := range sel {
				res.Witness[i] = in.Answers()[idx]
			}
			// Raise the pruning bar to the incumbent: only strictly
			// better completions are interesting from here on.
			s.cutoff = f
		}
		return true
	})
	s.run()
	if s.canceled {
		return res, ctx.Err()
	}
	return res, nil
}

// sortedByScore returns indices ordered by descending score (stable, so
// equal scores keep answer order for determinism).
func sortedByScore(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	return order
}
