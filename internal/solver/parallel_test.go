package solver

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
)

// pointsInstance builds an identity-query instance over 2-column integer
// points: relevance = x, distance = Euclidean.
func pointsInstance(pts [][2]int64, kind objective.Kind, lambda float64, k int) *core.Instance {
	r := relation.NewRelation(relation.NewSchema("P", "x", "y"))
	for _, p := range pts {
		r.Insert(relation.Ints(p[0], p[1]))
	}
	db := relation.NewDatabase().Add(r)
	obj := objective.New(kind, objective.AttrRelevance(0, 1), objective.EuclideanDistance(), lambda)
	return &core.Instance{Query: query.IdentityQuery("P", 2), DB: db, Obj: obj, K: k}
}

func randomPoints(rng *rand.Rand, n int) [][2]int64 {
	pts := make([][2]int64, n)
	for i := range pts {
		pts[i] = [2]int64{rng.Int63n(50), rng.Int63n(50)}
	}
	return pts
}

// sameWitness asserts two witness slices hold identical tuples in order.
func sameWitness(t *testing.T, label string, seq, par []relation.Tuple) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: witness length %d != %d", label, len(par), len(seq))
	}
	for i := range seq {
		if !seq[i].Equal(par[i]) {
			t.Fatalf("%s: witness[%d] = %v, sequential has %v", label, i, par[i], seq[i])
		}
	}
}

// TestParallelSearchMatchesSequential is the differential core of the
// acceptance criterion: across FMS/FMM/Fmono × λ ∈ {0, ½, 1} × instance
// sizes, the parallel search must return byte-identical sets and scores to
// the sequential path for all four exact procedures.
func TestParallelSearchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	kinds := []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono}
	lambdas := []float64{0, 0.5, 1}
	sizes := []struct{ n, k int }{{7, 3}, {12, 4}, {18, 5}}
	for _, kind := range kinds {
		for _, lambda := range lambdas {
			for _, sz := range sizes {
				pts := randomPoints(rng, sz.n)
				seqIn := pointsInstance(pts, kind, lambda, sz.k)
				parIn := pointsInstance(pts, kind, lambda, sz.k)
				parIn.Parallelism = 4

				label := fmt.Sprintf("%s/λ=%v/n%dk%d", kind, lambda, sz.n, sz.k)

				seqBest, err := QRDBestContext(ctx, seqIn)
				if err != nil {
					t.Fatal(err)
				}
				parBest, err := QRDBestContext(ctx, parIn)
				if err != nil {
					t.Fatal(err)
				}
				if seqBest.Exists != parBest.Exists || seqBest.Value != parBest.Value {
					t.Fatalf("%s best: parallel (%v, %v) != sequential (%v, %v)",
						label, parBest.Exists, parBest.Value, seqBest.Exists, seqBest.Value)
				}
				sameWitness(t, label+" best", seqBest.Witness, parBest.Witness)

				// Decision QRD at a mid-range bound: same witness (the first
				// valid set in DFS order) and same value.
				for _, b := range []float64{0, seqBest.Value / 2, seqBest.Value} {
					seqIn.B, parIn.B = b, b
					seqQ, err := QRDExactContext(ctx, seqIn)
					if err != nil {
						t.Fatal(err)
					}
					parQ, err := QRDExactContext(ctx, parIn)
					if err != nil {
						t.Fatal(err)
					}
					if seqQ.Exists != parQ.Exists || seqQ.Value != parQ.Value {
						t.Fatalf("%s qrd(B=%v): parallel (%v, %v) != sequential (%v, %v)",
							label, b, parQ.Exists, parQ.Value, seqQ.Exists, seqQ.Value)
					}
					sameWitness(t, label+" qrd", seqQ.Witness, parQ.Witness)

					seqC, err := RDCExactContext(ctx, seqIn)
					if err != nil {
						t.Fatal(err)
					}
					parC, err := RDCExactContext(ctx, parIn)
					if err != nil {
						t.Fatal(err)
					}
					if seqC.Count.Cmp(parC.Count) != 0 {
						t.Fatalf("%s rdc(B=%v): parallel count %v != sequential %v",
							label, b, parC.Count, seqC.Count)
					}
				}

				// DRP against the greedy-ish set of the first k answers.
				u := make([]relation.Tuple, sz.k)
				copy(u, seqIn.Answers()[:sz.k])
				for _, r := range []int{1, 3, 1 << 20} {
					seqIn.U, parIn.U = u, u
					seqIn.R, parIn.R = r, r
					seqD, err := DRPExactContext(ctx, seqIn)
					if err != nil {
						t.Fatal(err)
					}
					parD, err := DRPExactContext(ctx, parIn)
					if err != nil {
						t.Fatal(err)
					}
					if seqD.InTopR != parD.InTopR || seqD.Better != parD.Better || seqD.FU != parD.FU {
						t.Fatalf("%s drp(r=%d): parallel (%v, %d, %v) != sequential (%v, %d, %v)",
							label, r, parD.InTopR, parD.Better, parD.FU, seqD.InTopR, seqD.Better, seqD.FU)
					}
				}
			}
		}
	}
}

// TestParallelSearchWithConstraints checks the constrained path (no warm
// start; Σ pruning replayed identically in frame generation).
func TestParallelSearchWithConstraints(t *testing.T) {
	ctx := context.Background()
	build := func() *core.Instance {
		rng := rand.New(rand.NewSource(11))
		in := pointsInstance(randomPoints(rng, 14), objective.MaxSum, 0.5, 4)
		c, err := compat.Parse(`forall t1, t2 (t1.x = t2.x -> t1.y = t2.y)`)
		if err != nil {
			t.Fatal(err)
		}
		in.Sigma = compat.NewSet(4).MustAdd(c)
		return in
	}
	seqIn, parIn := build(), build()
	parIn.Parallelism = 4
	seqRes, err := QRDBestContext(ctx, seqIn)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := QRDBestContext(ctx, parIn)
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Exists != parRes.Exists || seqRes.Value != parRes.Value {
		t.Fatalf("constrained best: parallel (%v, %v) != sequential (%v, %v)",
			parRes.Exists, parRes.Value, seqRes.Exists, seqRes.Value)
	}
	sameWitness(t, "constrained", seqRes.Witness, parRes.Witness)
	if parRes.Stats.Warm {
		t.Error("warm start must be skipped under constraints")
	}
	seqIn.B, parIn.B = seqRes.Value/2, seqRes.Value/2
	seqC, _ := RDCExactContext(ctx, seqIn)
	parC, _ := RDCExactContext(ctx, parIn)
	if seqC.Count.Cmp(parC.Count) != 0 {
		t.Fatalf("constrained count: parallel %v != sequential %v", parC.Count, seqC.Count)
	}
}

// TestParallelSearchPlaneOff exercises the interface-scoring path (no
// interned plane) under parallel workers.
func TestParallelSearchPlaneOff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(rng, 12)
	seqIn := pointsInstance(pts, objective.MaxMin, 0.5, 4)
	parIn := pointsInstance(pts, objective.MaxMin, 0.5, 4)
	seqIn.PlaneOff, parIn.PlaneOff = true, true
	parIn.Parallelism = 3
	seqRes, err := QRDBestContext(context.Background(), seqIn)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := QRDBestContext(context.Background(), parIn)
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Value != parRes.Value {
		t.Fatalf("plane-off: parallel %v != sequential %v", parRes.Value, seqRes.Value)
	}
	sameWitness(t, "plane-off", seqRes.Witness, parRes.Witness)
}

// TestParallelSearchDepths sweeps explicit split depths: results must be
// depth-independent.
func TestParallelSearchDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randomPoints(rng, 15)
	ref := pointsInstance(pts, objective.MaxSum, 0.7, 5)
	want, err := QRDBestContext(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	for depth := 1; depth <= 4; depth++ {
		in := pointsInstance(pts, objective.MaxSum, 0.7, 5)
		in.Parallelism = 4
		in.ParallelDepth = depth
		got, err := QRDBestContext(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value {
			t.Fatalf("depth %d: value %v != %v", depth, got.Value, want.Value)
		}
		sameWitness(t, "depth", want.Witness, got.Witness)
		if got.Stats.Frames == 0 {
			t.Errorf("depth %d: expected a parallel run (Frames > 0)", depth)
		}
	}
}

// TestParallelSearchWarmStart asserts the heuristic incumbent is installed
// and that it does not change the result.
func TestParallelSearchWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts := randomPoints(rng, 20)
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin, objective.Mono} {
		seqIn := pointsInstance(pts, kind, 0.5, 5)
		parIn := pointsInstance(pts, kind, 0.5, 5)
		parIn.Parallelism = 4
		seqRes, err := QRDBestContext(context.Background(), seqIn)
		if err != nil {
			t.Fatal(err)
		}
		parRes, err := QRDBestContext(context.Background(), parIn)
		if err != nil {
			t.Fatal(err)
		}
		if !parRes.Stats.Warm {
			t.Errorf("%s: expected a warm-started incumbent", kind)
		}
		if seqRes.Value != parRes.Value {
			t.Fatalf("%s: warm-started parallel %v != sequential %v", kind, parRes.Value, seqRes.Value)
		}
		sameWitness(t, kind.String(), seqRes.Witness, parRes.Witness)
	}
}

// TestParallelSearchCancel: a cancelled context aborts the parallel walk
// with the context's error.
func TestParallelSearchCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := pointsInstance(randomPoints(rng, 26), objective.MaxSum, 0.5, 10)
	in.Parallelism = 4
	in.Answers() // materialize so cancellation hits the search, not eval
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	if _, err := QRDBestContext(ctx, in); err == nil {
		t.Fatal("expected a cancellation error")
	}
}

// TestParallelSearchKEdgeCases: k larger than |Q(D)| and k equal to it.
func TestParallelSearchKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := randomPoints(rng, 5)
	tooBig := pointsInstance(pts, objective.MaxSum, 0.5, 9)
	tooBig.Parallelism = 4
	res, err := QRDBestContext(context.Background(), tooBig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exists {
		t.Error("k > |Q(D)| must not find a set")
	}
	exact := pointsInstance(pts, objective.MaxSum, 0.5, 5)
	exact.Parallelism = 4
	seq := pointsInstance(pts, objective.MaxSum, 0.5, 5)
	parRes, err := QRDBestContext(context.Background(), exact)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := QRDBestContext(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Value != seqRes.Value {
		t.Fatalf("k = n: parallel %v != sequential %v", parRes.Value, seqRes.Value)
	}
}
