package solver

import (
	"context"
	"errors"
	"math"
	"math/big"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/subset"
)

// RDCResult is the outcome of a result-diversity count.
type RDCResult struct {
	Count *big.Int
	Stats Stats
}

// RDCExact counts the valid sets for (Q, D, [Σ,] k, F, B) by exhaustive
// enumeration with admissible pruning: subtrees whose optimistic bound
// cannot reach B contribute no valid sets and are skipped. This realizes
// the #·NP / #·PSPACE guess-and-verify counting of Thm 7.1/7.2 and works in
// every setting including constraints.
func RDCExact(in *core.Instance) RDCResult {
	res, _ := RDCExactContext(context.Background(), in)
	return res
}

// RDCExactContext is RDCExact under a cancellation context: counting has no
// early exit, so this is the procedure that most needs interruption. A
// cancelled run returns ctx's error with the partial count.
func RDCExactContext(ctx context.Context, in *core.Instance) (RDCResult, error) {
	res := RDCResult{Count: new(big.Int)}
	if _, err := in.AnswersContext(ctx); err != nil {
		return res, err
	}
	if w := parallelism(in); w > 1 {
		return rdcExactParallel(ctx, in, w)
	}
	one := big.NewInt(1)
	s := newSearch(ctx, in, in.B, false, &res.Stats, func(sel []int, f float64) bool {
		res.Count.Add(res.Count, one)
		return true
	})
	s.run()
	if s.canceled {
		return res, ctx.Err()
	}
	return res, nil
}

// RDCMaxMinRelevanceOnlyFP counts valid sets for FMM at λ=0 with a fixed
// query in FP (Theorem 8.2): F(U) = min δrel over U, so U is valid iff every
// member has relevance >= B; the count is C(#{t : δrel(t) >= B}, k).
func RDCMaxMinRelevanceOnlyFP(in *core.Instance) (RDCResult, error) {
	res := RDCResult{Count: new(big.Int)}
	if in.Obj.Kind != objective.MaxMin || in.Obj.Lambda != 0 {
		return res, errors.New("solver: RDCMaxMinRelevanceOnlyFP requires FMM with λ=0")
	}
	if in.Sigma.Len() > 0 {
		return res, ErrConstrained
	}
	res.Stats.Answers = len(in.Answers())
	cnt := 0
	for _, r := range relScores(in) {
		if r >= in.B {
			cnt++
		}
	}
	res.Count = subset.Count(cnt, in.K)
	return res, nil
}

// RDCConstantK counts valid sets for a constant k by direct enumeration of
// the O(n^k) candidate sets — the FP data-complexity algorithm of
// Corollary 8.4 (and Corollary 9.7: it remains FP under constraints, since
// Cm validation is PTIME per set).
func RDCConstantK(in *core.Instance) RDCResult {
	// Identical engine; the polynomial bound comes from k being constant.
	return RDCExact(in)
}

// RDCModularDP counts valid sets for modular objectives (Fmono always;
// FMS at λ=0 via its per-tuple scores) with integer scores, using a
// pseudo-polynomial dynamic program over (chosen count, achieved sum):
// dp[j][s] = number of ways to pick j tuples totalling s. The count of valid
// sets is Σ_{s >= B} dp[k][s]. This extends the paper's observation in
// Thm 7.5 that RDC(LQ, Fmono) is #P-complete via #SSPk — subset-sum counting
// is exactly what the DP solves in time O(n·k·S).
//
// Scores are scaled by the given multiplier and must land on integers
// within tolerance; otherwise an error is returned.
func RDCModularDP(in *core.Instance, scale float64) (RDCResult, error) {
	res := RDCResult{Count: new(big.Int)}
	if in.Sigma.Len() > 0 {
		return res, ErrConstrained
	}
	var scores []float64
	switch {
	case in.Obj.Kind == objective.Mono:
		scores = monoScores(in)
	case in.Obj.Kind == objective.MaxSum && in.Obj.Lambda == 0:
		scores = relScores(in)
		for i := range scores {
			scores[i] = float64(in.K-1) * scores[i]
		}
	default:
		return res, errors.New("solver: RDCModularDP requires a modular objective (Fmono, or FMS at λ=0)")
	}
	res.Stats.Answers = len(scores)
	ints := make([]int64, len(scores))
	total := int64(0)
	for i, sc := range scores {
		v := sc * scale
		r := math.Round(v)
		if math.Abs(v-r) > 1e-6 || r < 0 {
			return res, errors.New("solver: scores are not non-negative integers at this scale")
		}
		ints[i] = int64(r)
		total += ints[i]
	}
	bound := int64(math.Ceil(in.B*scale - 1e-9))
	if bound < 0 {
		bound = 0
	}
	if bound > total {
		res.Count = new(big.Int)
		return res, nil
	}
	k := in.K
	if k < 0 || k > len(ints) {
		return res, nil
	}
	// dp[j][s]: ways to choose j elements with sum exactly s.
	dp := make([][]*big.Int, k+1)
	for j := range dp {
		dp[j] = make([]*big.Int, total+1)
		for s := range dp[j] {
			dp[j][s] = new(big.Int)
		}
	}
	dp[0][0].SetInt64(1)
	for _, w := range ints {
		for j := k; j >= 1; j-- {
			for s := total; s >= w; s-- {
				if dp[j-1][s-w].Sign() != 0 {
					dp[j][s].Add(dp[j][s], dp[j-1][s-w])
				}
			}
		}
	}
	for s := bound; s <= total; s++ {
		res.Count.Add(res.Count, dp[k][s])
	}
	return res, nil
}

// RDCTuringReduce demonstrates the polynomial Turing reduction pattern of
// Theorem 7.5: counting sets with F(U) exactly equal to a target value d by
// two oracle calls, X = #{U : F(U) >= d} minus Y = #{U : F(U) >= d'}, where
// d' is the smallest representable value above d for the instance's score
// granularity eps. The oracle is any RDC procedure.
func RDCTuringReduce(in *core.Instance, d, eps float64, oracle func(*core.Instance) RDCResult) *big.Int {
	lower := *in
	lower.B = d
	upper := *in
	upper.B = d + eps
	x := oracle(&lower).Count
	y := oracle(&upper).Count
	return new(big.Int).Sub(x, y)
}
