// Parallel branch-and-bound: the exact subset search split at a configurable
// depth into prefix frames fed to a pool of workers, all pruning against one
// shared atomic incumbent bound. The frames partition the sequential walk's
// leaf order into contiguous blocks, so merging frame results in frame order
// reproduces the sequential outcome byte-for-byte:
//
//   - First-witness searches (QRD existence) take the earliest frame's
//     witness — exactly the first valid set in DFS order.
//   - Best-set searches (the optimization form) take the earliest frame
//     achieving the global maximum, whose recorded witness is its first
//     maximal leaf — exactly the sequential incumbent. Scores are replayed
//     through the same incremental push order, so they agree to the last bit.
//   - Counting searches add per-frame counts; each qualifying leaf is
//     counted exactly once regardless of scheduling.
//
// Pruning stays admissible throughout: the shared incumbent never exceeds
// the true optimum (it only ever holds achievable leaf values), so no
// optimal leaf is ever cut, only the order and amount of wasted work differ
// between runs. The incumbent is warm-started from the greedy heuristics of
// internal/approx, so pruning bites from the first node of every frame.
package solver

import (
	"context"
	"math"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/ctxpoll"
)

// parMode selects how frame results merge.
type parMode int

const (
	// modeFirst stops at the first admitted leaf in DFS order (QRD).
	modeFirst parMode = iota
	// modeBest tracks the maximum-score leaf (optimization QRD).
	modeBest
	// modeCountAll counts every admitted leaf (RDC).
	modeCountAll
	// modeCountCap counts admitted leaves up to a cap (DRP).
	modeCountCap
)

// parallelism resolves the effective worker count for the exact search on
// in: the instance's Parallelism when above 1 and the instance is worth
// splitting, 1 (sequential) otherwise.
func parallelism(in *core.Instance) int {
	if in.Parallelism <= 1 || in.K < 1 {
		return 1
	}
	return in.Parallelism
}

// splitDepth picks the prefix depth at which the tree is cut into frames:
// the instance's ParallelDepth when set, otherwise the smallest depth whose
// frame count comfortably oversubscribes the workers (so the atomic frame
// queue balances skewed subtree sizes — cheap work stealing).
func splitDepth(in *core.Instance, n, k, workers int) int {
	if d := in.ParallelDepth; d > 0 {
		if d > k {
			d = k
		}
		return d
	}
	const oversubscribe = 8
	target := oversubscribe * workers
	d, frames := 1, n
	for frames < target && d < k && d < 3 {
		d++
		frames = frames * (n - d + 1) / d // C(n, d) from C(n, d-1)
	}
	return d
}

// atomicMax is a lock-free monotone float64 maximum. Floats are stored as
// order-preserving uint64 bits so compare-and-swap can race freely.
type atomicMax struct{ bits atomic.Uint64 }

// orderedBits maps float64 to uint64 preserving <.
func orderedBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

func fromOrderedBits(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

func newAtomicMax() *atomicMax {
	m := &atomicMax{}
	m.bits.Store(orderedBits(math.Inf(-1)))
	return m
}

// Load returns the current maximum.
func (m *atomicMax) Load() float64 { return fromOrderedBits(m.bits.Load()) }

// Raise lifts the maximum to at least f.
func (m *atomicMax) Raise(f float64) {
	nb := orderedBits(f)
	for {
		ob := m.bits.Load()
		if ob >= nb || m.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// parShared is the cross-frame coordination state.
type parShared struct {
	best   *atomicMax   // modeBest: global incumbent bound
	winner atomic.Int64 // modeFirst: earliest frame index holding a witness
	count  atomic.Int64 // modeCountCap: qualifying leaves found so far
}

// frameSpec is one unit of parallel work: a selection prefix (pushed in
// ascending index order, exactly as the sequential walk would) plus the
// index its extension resumes from.
type frameSpec struct {
	prefix []int
	next   int
}

// frameRes is one frame's contribution to the merged outcome.
type frameRes struct {
	exists bool
	value  float64
	sel    []int
	count  int64
}

// parOutcome is the merged result of a parallel walk.
type parOutcome struct {
	exists   bool
	value    float64
	sel      []int
	count    int64
	canceled bool
}

// genFrames expands the tree to depth, applying the same feasibility, bound
// and constraint pruning as the sequential walk, and returns the surviving
// prefixes in DFS order. Prefixes that complete a k-set before depth are
// emitted as (trivial) frames so small k degrades gracefully.
func (s *search) genFrames(depth int) []frameSpec {
	var frames []frameSpec
	var walk func(next int) bool
	walk = func(next int) bool {
		if s.interrupted() {
			return false
		}
		if len(s.sel) == s.k || len(s.sel) == depth {
			frames = append(frames, frameSpec{prefix: append([]int(nil), s.sel...), next: next})
			return true
		}
		if len(s.answers)-next < s.k-len(s.sel) {
			return true
		}
		if s.prunes(next, s.cut()) {
			s.stats.Pruned++
			return true
		}
		for i := next; i < len(s.answers); i++ {
			saved := s.push(i)
			if s.pruneSigma && !s.in.SatisfiesConstraints(s.tuples(s.sel)) {
				s.stats.Pruned++
				s.pop(i, saved)
				continue
			}
			ok := walk(i + 1)
			s.pop(i, saved)
			if !ok {
				return false
			}
		}
		return true
	}
	s.sel = make([]int, 0, s.k)
	walk(0)
	return frames
}

// parallelWalk runs the frame pool and merges the outcome. master must be a
// freshly built search (no pushes) whose found callback is unused; each
// worker clones it per frame with frame-local stats, poller and callbacks.
func parallelWalk(ctx context.Context, master *search, mode parMode, workers, capR int) parOutcome {
	var out parOutcome
	if master.canceled {
		out.canceled = true
		return out
	}
	if master.k < 0 || master.k > len(master.answers) {
		// Mirror the sequential run(), which returns without exploring.
		return out
	}
	sh := &parShared{best: master.sharedBest}
	sh.winner.Store(math.MaxInt64)

	depth := splitDepth(master.in, len(master.answers), master.k, workers)
	frames := master.genFrames(depth)
	if master.canceled {
		out.canceled = true
		return out
	}
	master.stats.Frames = len(frames)

	results := make([]frameRes, len(frames))
	stats := make([]Stats, len(frames))
	if workers > len(frames) {
		workers = len(frames)
	}
	var next atomic.Int64
	var anyCanceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(frames) {
					return
				}
				if skipFrame(sh, mode, i, capR) {
					continue
				}
				if runFrame(ctx, master, frames[i], mode, i, capR, sh, &results[i], &stats[i]) {
					anyCanceled.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()

	for i := range stats {
		master.stats.Nodes += stats[i].Nodes
		master.stats.Leaves += stats[i].Leaves
		master.stats.Pruned += stats[i].Pruned
	}
	// Merge even when cancelled: the sequential procedures hand back their
	// partial incumbent / count alongside ctx's error, and the parallel
	// twins keep that anytime contract. Only a completed walk is Explored
	// (and only a completed walk's merge carries any guarantee).
	out.canceled = anyCanceled.Load()
	master.stats.Explored = !out.canceled

	switch mode {
	case modeFirst:
		for i := range results {
			if results[i].exists {
				out.exists, out.value, out.sel = true, results[i].value, results[i].sel
				break
			}
		}
	case modeBest:
		for i := range results {
			r := &results[i]
			if r.exists && (!out.exists || r.value > out.value) {
				out.exists, out.value, out.sel = true, r.value, r.sel
			}
		}
	case modeCountAll, modeCountCap:
		for i := range results {
			out.count += results[i].count
		}
	}
	return out
}

// skipFrame reports that frame i cannot contribute to the merged outcome
// and need not run at all.
func skipFrame(sh *parShared, mode parMode, i, capR int) bool {
	switch mode {
	case modeFirst:
		return sh.winner.Load() < int64(i)
	case modeCountCap:
		return sh.count.Load() >= int64(capR)
	default:
		return false
	}
}

// runFrame replays one prefix and walks its subtree with frame-local state,
// reporting whether the walk was cancelled by ctx.
func runFrame(ctx context.Context, master *search, fr frameSpec, mode parMode, idx, capR int, sh *parShared, res *frameRes, st *Stats) bool {
	fs := *master
	fs.stats = st
	fs.poller = ctxpoll.New(ctx)
	fs.sel = make([]int, 0, fs.k)
	fs.relSum, fs.pairSum = 0, 0
	fs.minRel, fs.minDis = math.Inf(1), math.Inf(1)
	switch mode {
	case modeFirst:
		fs.found = func(sel []int, f float64) bool {
			res.exists, res.value = true, f
			res.sel = append([]int(nil), sel...)
			// Publish the earliest witness-holding frame so later frames
			// stop; earlier frames keep running — theirs would win.
			for {
				w := sh.winner.Load()
				if w <= int64(idx) || sh.winner.CompareAndSwap(w, int64(idx)) {
					break
				}
			}
			return false
		}
		fs.abandon = func() bool { return sh.winner.Load() < int64(idx) }
	case modeBest:
		fs.found = func(sel []int, f float64) bool {
			if !res.exists || f > res.value {
				res.exists, res.value = true, f
				res.sel = append(res.sel[:0], sel...)
				sh.best.Raise(f)
			}
			return true
		}
	case modeCountAll:
		fs.found = func(sel []int, f float64) bool {
			res.count++
			return true
		}
	case modeCountCap:
		fs.found = func(sel []int, f float64) bool {
			res.count++
			return sh.count.Add(1) < int64(capR)
		}
		fs.abandon = func() bool { return sh.count.Load() >= int64(capR) }
	}
	for _, i := range fr.prefix {
		fs.push(i)
	}
	fs.recurse(fr.next)
	return fs.canceled
}

// warmStart seeds the shared incumbent from the objective-matched greedy
// heuristic: its set's exact leaf value (replayed through the incremental
// push order, so it is achievable bit-for-bit) becomes the initial pruning
// bound. Skipped under constraints — a greedy set may violate Σ, and an
// unachievable bound would prune soundly-scored optima.
func warmStart(ctx context.Context, in *core.Instance, master *search) (bool, error) {
	ids, ok, err := approx.Incumbent(ctx, in)
	if err != nil || !ok {
		return false, err
	}
	master.sharedBest.Raise(master.valueAt(ids))
	master.stats.Warm = true
	return true, nil
}

// qrdBestParallel is the parallel twin of QRDBestContext.
func qrdBestParallel(ctx context.Context, in *core.Instance, workers int) (QRDResult, error) {
	var res QRDResult
	master := newSearch(ctx, in, 0, false, &res.Stats, nil)
	if master.canceled {
		return res, ctx.Err()
	}
	master.sharedBest = newAtomicMax()
	if _, err := warmStart(ctx, in, master); err != nil {
		return res, err
	}
	out := parallelWalk(ctx, master, modeBest, workers, 0)
	if out.exists {
		res.Exists = true
		res.Value = out.value
		res.Witness = master.tuples(out.sel)
	}
	if out.canceled {
		// The partial incumbent (if any) rides along with the error, as in
		// the sequential path; it carries no optimality guarantee.
		return res, ctx.Err()
	}
	return res, nil
}

// qrdExactParallel is the parallel twin of QRDExactContext's search phase.
func qrdExactParallel(ctx context.Context, in *core.Instance, workers int) (QRDResult, error) {
	var res QRDResult
	master := newSearch(ctx, in, in.B, false, &res.Stats, nil)
	out := parallelWalk(ctx, master, modeFirst, workers, 0)
	if out.exists {
		res.Exists = true
		res.Value = out.value
		res.Witness = master.tuples(out.sel)
	}
	if out.canceled {
		return res, ctx.Err()
	}
	return res, nil
}

// rdcExactParallel is the parallel twin of RDCExactContext's search phase.
func rdcExactParallel(ctx context.Context, in *core.Instance, workers int) (RDCResult, error) {
	res := RDCResult{Count: new(big.Int)}
	master := newSearch(ctx, in, in.B, false, &res.Stats, nil)
	out := parallelWalk(ctx, master, modeCountAll, workers, 0)
	res.Count.SetInt64(out.count)
	if out.canceled {
		return res, ctx.Err() // partial count, as in the sequential path
	}
	return res, nil
}

// drpCountParallel is the parallel twin of DRPExactContext's counting phase:
// it counts candidate sets scoring strictly above fu, stopping once capR are
// certain. The sequential walk always counts at least one qualifying leaf
// before noticing the cap, so the cap floor is 1.
func drpCountParallel(ctx context.Context, in *core.Instance, fu float64, stats *Stats, workers int) (int, bool, error) {
	capR := in.R
	if capR < 1 {
		capR = 1
	}
	master := newSearch(ctx, in, fu, true, stats, nil)
	out := parallelWalk(ctx, master, modeCountCap, workers, capR)
	better := out.count
	if better > int64(capR) {
		better = int64(capR)
	}
	if out.canceled {
		return int(better), false, ctx.Err() // partial count rides along
	}
	return int(better), true, nil
}
