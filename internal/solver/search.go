// Package solver implements decision and counting procedures for the three
// diversification problems of Section 4:
//
//   - QRD — does a valid k-set exist? Exact branch-and-bound search (the
//     guess-and-check upper-bound procedures of Thm 5.1/5.2 made
//     deterministic), plus the paper's PTIME algorithms for the tractable
//     cells: Fmono data complexity (Thm 5.4), λ=0 data complexity (Thm 8.2)
//     and identity queries with Fmono (Cor 8.1).
//   - DRP — is rank(U) ≤ r? Exact counting of better sets, plus the
//     FindNext-style top-r enumeration for Fmono (Thm 6.4) and the λ=0
//     special cases.
//   - RDC — how many valid sets? Exact enumeration with admissible pruning,
//     the FP counting formulas of Thm 8.2/Cor 8.4, and a pseudo-polynomial
//     dynamic program for integer-scored modular instances.
//
// Every exact procedure honours compatibility constraints Σ (Section 9);
// the PTIME shortcuts refuse instances with constraints, mirroring the
// paper's result that those cells turn intractable under Cm (Thm 9.3).
package solver

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/ctxpoll"
	"repro/internal/objective"
	"repro/internal/relation"
)

// Stats reports work done by a solver run, used by the bench harness to
// expose the exponential/polynomial gap empirically. For parallel runs,
// Nodes/Leaves/Pruned aggregate over every worker frame; the totals differ
// from a sequential run of the same instance (the shared incumbent prunes
// differently) even though the returned sets and scores are identical.
type Stats struct {
	Nodes    int // search-tree nodes visited (partial sets)
	Leaves   int // complete candidate sets evaluated
	Pruned   int // subtrees cut by the admissible bound
	Answers  int // |Q(D)|
	Explored bool
	Frames   int  // parallel search frames (0: sequential walk)
	Warm     bool // pruning bound warm-started from a heuristic incumbent
}

// search enumerates k-subsets of the instance's answers in index order,
// maintaining objective-specific incremental state for admissible
// upper-bound pruning.
//
// cutoff is the score threshold; strict selects F > cutoff (DRP counting)
// versus F >= cutoff (QRD/RDC validity). found is invoked with each
// qualifying candidate set and may return false to stop (QRD existence).
type search struct {
	in      *core.Instance
	answers []relation.Tuple
	k       int
	cutoff  float64
	strict  bool
	found   func(sel []int, f float64) bool
	stats   *Stats

	// plane is the interned score plane: relevance and pairwise distances
	// as array loads on answer IDs instead of interface calls on tuples.
	// Nil when the instance disables it, in which case the search scores
	// through the Relevance/Distance interfaces directly (the pre-plane
	// path, kept for differential testing and benchmarking).
	plane *objective.Plane

	// pruneSigma enables constraint pruning on partial selections: sound
	// exactly when every constraint is universal-only (violation-monotone).
	pruneSigma bool

	// poller is sampled along the walk so the exponential search is
	// interruptible; canceled records that the walk was cut off (making
	// the partial result unreliable).
	poller   *ctxpoll.Poller
	canceled bool

	// sharedBest, when non-nil, is the global incumbent bound of a parallel
	// best-set search: every worker frame prunes (and admits) against
	// max(cutoff, sharedBest), so a bound raised by one worker cuts the
	// others' subtrees too. It only ever rises, and it never exceeds the
	// true optimum, so pruning stays admissible.
	sharedBest *atomicMax

	// abandon, when non-nil, reports that this frame's result can no longer
	// influence the merged outcome (an earlier frame already holds the
	// witness, or a capped count is saturated); the walk stops without
	// marking cancellation.
	abandon func() bool

	// Incremental state.
	sel     []int
	relSum  float64 // Σ δrel over selection
	pairSum float64 // Σ unordered pairwise δdis over selection
	minRel  float64
	minDis  float64

	// Precomputed optimistic bounds.
	maxRel     float64
	maxDis     float64
	monoScores []float64 // per-answer Fmono contributions
	monoSuffix []float64 // monoSuffix[i] = sum of top (k) scores among answers[i:]... see build
}

func newSearch(ctx context.Context, in *core.Instance, cutoff float64, strict bool, stats *Stats, found func([]int, float64) bool) *search {
	s := &search{
		poller:  ctxpoll.New(ctx),
		in:      in,
		answers: in.Answers(),
		k:       in.K,
		cutoff:  cutoff,
		strict:  strict,
		found:   found,
		stats:   stats,
		minRel:  math.Inf(1),
		minDis:  math.Inf(1),
	}
	s.stats.Answers = len(s.answers)
	s.pruneSigma = in.Sigma.Len() > 0 && in.Sigma.ForallOnly()
	o := in.Obj
	plane, err := in.PlaneContext(ctx)
	if err != nil {
		s.canceled = true
		return s
	}
	s.plane = plane
	switch o.Kind {
	case objective.MaxSum, objective.MaxMin:
		if plane != nil {
			// The plane builds its pair store here (matrix or tiles, when
			// the regime has one) and hands back the max distance as a
			// byproduct; the walk then reads distances as contiguous float
			// loads. Indexed planes return the O(n) triangle-inequality
			// bound instead of scanning all pairs — an admissible (≥ true
			// max) stand-in that only loosens pruning — and the walk falls
			// back to on-demand pair evaluation through the capped memo.
			s.maxRel = plane.MaxRel()
			md, err := plane.MaxDisBoundContext(ctx)
			if err != nil {
				s.canceled = true
				return s
			}
			s.maxDis = md
			break
		}
		for i, t := range s.answers {
			if s.interrupted() {
				break
			}
			if r := o.Rel.Rel(t); r > s.maxRel {
				s.maxRel = r
			}
			for j := i + 1; j < len(s.answers); j++ {
				if d := o.Dis.Dis(t, s.answers[j]); d > s.maxDis {
					s.maxDis = d
				}
			}
		}
	case objective.Mono:
		if plane != nil {
			s.monoScores = o.MonoScoresPlane(plane)
		} else {
			s.monoScores = o.MonoScores(s.answers)
		}
	}
	return s
}

// run walks the subset tree.
func (s *search) run() {
	if s.k < 0 || s.k > len(s.answers) || s.canceled {
		return
	}
	s.sel = make([]int, 0, s.k)
	s.recurse(0)
	s.stats.Explored = !s.canceled
}

// interrupted reports whether the search must stop. Once true it stays
// true.
func (s *search) interrupted() bool {
	if s.poller.Stop() {
		s.canceled = true
	}
	return s.canceled
}

// cut returns the effective score threshold: the static cutoff, raised to
// the shared incumbent in a parallel best-set search.
func (s *search) cut() float64 {
	c := s.cutoff
	if s.sharedBest != nil {
		if g := s.sharedBest.Load(); g > c {
			c = g
		}
	}
	return c
}

// admits reports whether a complete set's score qualifies.
func (s *search) admits(f float64) bool {
	if s.strict {
		return f > s.cut()
	}
	return f >= s.cut()
}

// bound returns an admissible (never under-estimating) upper bound on the
// score of any completion of the current partial selection drawing its
// remaining elements from answers[next:].
func (s *search) bound(next int) float64 {
	o := s.in.Obj
	j := len(s.sel)
	r := s.k - j
	switch o.Kind {
	case objective.MaxSum:
		rel := float64(s.k-1) * (1 - o.Lambda) * (s.relSum + float64(r)*s.maxRel)
		pairs := s.pairSum + (float64(j*r)+float64(r*(r-1))/2)*s.maxDis
		return rel + o.Lambda*2*pairs
	case objective.MaxMin:
		mr := s.minRel
		if j == 0 {
			mr = s.maxRel
		}
		md := s.minDis
		if j < 2 {
			md = s.maxDis
		}
		if s.k < 2 {
			md = 0
		}
		return (1-o.Lambda)*mr + o.Lambda*md
	case objective.Mono:
		// Optimistic: take the r largest scores among the remaining tail.
		sum := s.relSum // reused as the running mono score sum
		rest := topSum(s.monoScores[next:], r)
		return sum + rest
	default:
		return math.Inf(1)
	}
}

// topSum returns the sum of the r largest values in xs (all of them if
// fewer). Small r and xs in our workloads; selection by partial sort.
func topSum(xs []float64, r int) float64 {
	if r <= 0 {
		return 0
	}
	if r >= len(xs) {
		total := 0.0
		for _, x := range xs {
			total += x
		}
		return total
	}
	// Maintain the r largest in a small slice (r is k-j, typically tiny).
	best := make([]float64, 0, r)
	for _, x := range xs {
		if len(best) < r {
			best = append(best, x)
			continue
		}
		mi := 0
		for i := 1; i < r; i++ {
			if best[i] < best[mi] {
				mi = i
			}
		}
		if x > best[mi] {
			best[mi] = x
		}
	}
	total := 0.0
	for _, x := range best {
		total += x
	}
	return total
}

// recurse extends the selection with indices >= next. It returns false when
// the caller requested a stop.
func (s *search) recurse(next int) bool {
	s.stats.Nodes++
	if s.interrupted() {
		return false
	}
	if s.abandon != nil && s.abandon() {
		return false
	}
	if len(s.sel) == s.k {
		return s.leaf()
	}
	// Not enough elements left to finish the set.
	if len(s.answers)-next < s.k-len(s.sel) {
		return true
	}
	if c := s.cut(); s.prunes(next, c) {
		s.stats.Pruned++
		return true
	}
	for i := next; i < len(s.answers); i++ {
		saved := s.push(i)
		if s.pruneSigma && !s.in.SatisfiesConstraints(s.tuples(s.sel)) {
			// Universal-only constraints already violated by the partial
			// set stay violated in every completion: cut the subtree.
			s.stats.Pruned++
			s.pop(i, saved)
			continue
		}
		ok := s.recurse(i + 1)
		s.pop(i, saved)
		if !ok {
			return false
		}
	}
	return true
}

// prunes reports whether the subtree rooted at the current partial selection
// (drawing from answers[next:]) cannot contain a qualifying set at threshold
// c. The comparison allows a magnitude-relative slack: bound accumulates its
// sums in a different order than the leaf evaluation, so a subtree whose
// best completion ties the threshold exactly may see its upper bound round
// one ulp below it. That matters once thresholds can equal achievable leaf
// values bit-for-bit — the warm-started incumbent of the parallel search —
// and the sequential walk uses the same rule so the two paths prune (and
// therefore report) identically.
func (s *search) prunes(next int, c float64) bool {
	ub := s.bound(next)
	c -= floatSlack(c)
	if s.strict {
		return ub <= c
	}
	return ub < c
}

type savedState struct {
	relSum, pairSum, minRel, minDis float64
}

func (s *search) push(i int) savedState {
	saved := savedState{s.relSum, s.pairSum, s.minRel, s.minDis}
	o := s.in.Obj
	switch o.Kind {
	case objective.Mono:
		s.relSum += s.monoScores[i]
	default:
		var r float64
		if s.plane != nil {
			r = s.plane.Rel(i)
		} else {
			r = o.Rel.Rel(s.answers[i])
		}
		s.relSum += r
		if r < s.minRel {
			s.minRel = r
		}
		for _, j := range s.sel {
			var d float64
			if s.plane != nil {
				d = s.plane.Dis(j, i)
			} else {
				d = o.Dis.Dis(s.answers[j], s.answers[i])
			}
			s.pairSum += d
			if d < s.minDis {
				s.minDis = d
			}
		}
	}
	s.sel = append(s.sel, i)
	return saved
}

func (s *search) pop(i int, saved savedState) {
	s.sel = s.sel[:len(s.sel)-1]
	s.relSum, s.pairSum, s.minRel, s.minDis = saved.relSum, saved.pairSum, saved.minRel, saved.minDis
	_ = i
}

// leaf evaluates a complete candidate set.
func (s *search) leaf() bool {
	s.stats.Leaves++
	f := s.value()
	if !s.admits(f) {
		return true
	}
	if s.in.Sigma != nil {
		u := s.tuples(s.sel)
		if !s.in.SatisfiesConstraints(u) {
			return true
		}
	}
	return s.found(s.sel, f)
}

// value computes the exact objective of the current complete selection from
// the incremental state.
func (s *search) value() float64 {
	o := s.in.Obj
	switch o.Kind {
	case objective.MaxSum:
		return float64(s.k-1)*(1-o.Lambda)*s.relSum + o.Lambda*2*s.pairSum
	case objective.MaxMin:
		mr := s.minRel
		if s.k == 0 {
			mr = 0
		}
		md := s.minDis
		if s.k < 2 {
			md = 0
		}
		return (1-o.Lambda)*mr + o.Lambda*md
	case objective.Mono:
		return s.relSum
	default:
		return 0
	}
}

// monoScores returns the per-answer Fmono scores, served from the interned
// score plane when the instance has one (precomputed relevance vector plus
// cached distance row sums) and recomputed through the interfaces otherwise.
func monoScores(in *core.Instance) []float64 {
	if p := in.Plane(); p != nil {
		return in.Obj.MonoScoresPlane(p)
	}
	return in.Obj.MonoScores(in.Answers())
}

// relScores returns δrel per answer, from the plane's precomputed vector
// when available.
func relScores(in *core.Instance) []float64 {
	if p := in.Plane(); p != nil {
		out := make([]float64, p.Len())
		for i := range out {
			out[i] = p.Rel(i)
		}
		return out
	}
	answers := in.Answers()
	out := make([]float64, len(answers))
	for i, t := range answers {
		out[i] = in.Obj.Rel.Rel(t)
	}
	return out
}

// valueAt computes the exact leaf value the walk would report for the
// ascending selection ids, by replaying the incremental pushes in walk
// order on a scratch copy. The result is bit-identical to the score the
// search assigns that leaf, which is what makes it a sound warm-start
// pruning bound: the true optimum can never fall below an achievable leaf
// value.
func (s *search) valueAt(ids []int) float64 {
	fs := *s
	fs.stats = &Stats{}
	fs.sel = make([]int, 0, len(ids))
	fs.relSum, fs.pairSum = 0, 0
	fs.minRel, fs.minDis = math.Inf(1), math.Inf(1)
	for _, id := range ids {
		fs.push(id)
	}
	return fs.value()
}

// tuples materializes the selected tuples.
func (s *search) tuples(sel []int) []relation.Tuple {
	out := make([]relation.Tuple, len(sel))
	for i, idx := range sel {
		out[i] = s.answers[idx]
	}
	return out
}
