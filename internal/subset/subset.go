// Package subset supplies the k-subset combinatorics that the
// diversification solvers are built on: lexicographic enumeration of
// k-element index sets (the candidate sets U ⊆ Q(D) with |U| = k of
// Section 4), exact binomial coefficients for the FP counting results
// (Thm 8.2, Cor 8.4), and best-first enumeration of k-subsets in descending
// order of additive score — the engine behind the paper's FindNext procedure
// for DRP(LQ, Fmono) (Thm 6.4).
package subset

import (
	"container/heap"
	"math/big"
	"sort"
)

// ForEach enumerates every k-element subset of {0, ..., n-1} in
// lexicographic order, invoking yield with a reused index slice. yield
// returning false stops the enumeration early; ForEach reports whether the
// enumeration ran to completion. k = 0 yields the empty subset once.
func ForEach(n, k int, yield func(idx []int) bool) bool {
	if k < 0 || k > n {
		return true
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !yield(idx) {
			return false
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return true
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Count returns the number of k-subsets of an n-set as an exact big integer;
// C(n, k) = 0 outside 0 <= k <= n.
func Count(n, k int) *big.Int {
	if k < 0 || n < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Ranked enumerates k-subsets of a scored universe in non-increasing order
// of total score. It implements the best-first search that realizes the
// paper's FindNext one-tuple-replacement strategy (proof of Thm 6.4): start
// from the top-1 set (the k highest scores) and generate successors by
// replacing one element with a lower-scored one, exploring by a max-heap.
//
// Construction sorts the scores descending; Next then yields index sets
// (into the *sorted* order — use Perm to map back) together with their sums.
type Ranked struct {
	scores []float64 // sorted descending
	perm   []int     // perm[i] = original index of sorted position i
	heap   rankHeap
	seen   map[string]bool
	k      int
}

// NewRanked prepares ranked enumeration of k-subsets of scores.
// It returns nil if k is out of range.
func NewRanked(scores []float64, k int) *Ranked {
	n := len(scores)
	if k < 0 || k > n {
		return nil
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sorted := append([]float64(nil), scores...)
	sort.SliceStable(perm, func(a, b int) bool { return scores[perm[a]] > scores[perm[b]] })
	for i, p := range perm {
		sorted[i] = scores[p]
	}
	r := &Ranked{scores: sorted, perm: perm, seen: make(map[string]bool), k: k}
	first := make([]int, k)
	sum := 0.0
	for i := 0; i < k; i++ {
		first[i] = i
		sum += sorted[i]
	}
	r.push(first, sum)
	return r
}

// Next returns the next-best k-subset as sorted positions (in the internal
// descending-score order), its score sum, and whether one was available.
// The returned slice is owned by the caller.
func (r *Ranked) Next() ([]int, float64, bool) {
	if r == nil || r.heap.Len() == 0 {
		return nil, 0, false
	}
	top := heap.Pop(&r.heap).(rankNode)
	r.expand(top)
	return top.idx, top.sum, true
}

// Perm translates sorted positions back to indices into the original scores
// slice.
func (r *Ranked) Perm(idx []int) []int {
	out := make([]int, len(idx))
	for i, p := range idx {
		out[i] = r.perm[p]
	}
	return out
}

// expand pushes the successors of a combination: each obtained by moving one
// chosen position one step right into a free slot (the standard successor
// rule for subset-sum ranking; with descending scores this never skips a
// higher-sum set).
func (r *Ranked) expand(nd rankNode) {
	n := len(r.scores)
	for i := len(nd.idx) - 1; i >= 0; i-- {
		next := nd.idx[i] + 1
		if next >= n {
			continue
		}
		if i+1 < len(nd.idx) && next == nd.idx[i+1] {
			continue // occupied
		}
		child := append([]int(nil), nd.idx...)
		child[i] = next
		sum := nd.sum - r.scores[nd.idx[i]] + r.scores[next]
		r.push(child, sum)
	}
}

func (r *Ranked) push(idx []int, sum float64) {
	key := comboKey(idx)
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	heap.Push(&r.heap, rankNode{idx: idx, sum: sum})
}

func comboKey(idx []int) string {
	b := make([]byte, 0, len(idx)*3)
	for _, i := range idx {
		b = append(b, byte(i), byte(i>>8), byte(i>>16))
	}
	return string(b)
}

type rankNode struct {
	idx []int
	sum float64
}

type rankHeap []rankNode

func (h rankHeap) Len() int            { return len(h) }
func (h rankHeap) Less(i, j int) bool  { return h[i].sum > h[j].sum }
func (h rankHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x interface{}) { *h = append(*h, x.(rankNode)) }
func (h *rankHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
