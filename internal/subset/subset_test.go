package subset

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func collect(n, k int) [][]int {
	var out [][]int
	ForEach(n, k, func(idx []int) bool {
		out = append(out, append([]int(nil), idx...))
		return true
	})
	return out
}

func TestForEachEnumeratesAll(t *testing.T) {
	got := collect(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d combos, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("combo %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if got := collect(3, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("k=0 should yield exactly the empty set, got %v", got)
	}
	if got := collect(3, 3); len(got) != 1 {
		t.Errorf("k=n should yield one combo, got %v", got)
	}
	if got := collect(3, 4); len(got) != 0 {
		t.Errorf("k>n should yield nothing, got %v", got)
	}
	if got := collect(0, 0); len(got) != 1 {
		t.Errorf("n=k=0 should yield the empty set, got %v", got)
	}
	if !ForEach(3, -1, func([]int) bool { return true }) {
		t.Error("negative k should complete trivially")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	done := ForEach(5, 2, func([]int) bool {
		count++
		return count < 3
	})
	if done || count != 3 {
		t.Errorf("early stop: done=%v count=%d", done, count)
	}
}

func TestCountMatchesEnumeration(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for k := 0; k <= n+1; k++ {
			want := int64(len(collect(n, k)))
			if got := Count(n, k).Int64(); got != want {
				t.Errorf("Count(%d, %d) = %d, want %d", n, k, got, want)
			}
		}
	}
}

func TestCountBigValues(t *testing.T) {
	// C(100, 50) overflows int64; make sure big.Int handles it.
	c := Count(100, 50)
	if c.Sign() <= 0 || c.BitLen() < 90 {
		t.Errorf("C(100,50) = %v looks wrong", c)
	}
	if Count(-1, 0).Sign() != 0 || Count(5, -1).Sign() != 0 {
		t.Error("out-of-range Count should be 0")
	}
}

func TestRankedDescendingOrder(t *testing.T) {
	scores := []float64{5, 1, 4, 2, 3}
	r := NewRanked(scores, 2)
	var sums []float64
	for {
		_, sum, ok := r.Next()
		if !ok {
			break
		}
		sums = append(sums, sum)
	}
	if len(sums) != 10 {
		t.Fatalf("enumerated %d subsets, want C(5,2)=10", len(sums))
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(sums))) {
		t.Errorf("sums not descending: %v", sums)
	}
	if sums[0] != 9 { // 5+4
		t.Errorf("best sum = %v, want 9", sums[0])
	}
	if sums[len(sums)-1] != 3 { // 1+2
		t.Errorf("worst sum = %v, want 3", sums[len(sums)-1])
	}
}

func TestRankedPermMapsBack(t *testing.T) {
	scores := []float64{1, 9, 5}
	r := NewRanked(scores, 2)
	idx, sum, ok := r.Next()
	if !ok || sum != 14 {
		t.Fatalf("best = %v, %v", idx, sum)
	}
	orig := r.Perm(idx)
	total := 0.0
	for _, i := range orig {
		total += scores[i]
	}
	if total != 14 {
		t.Errorf("Perm mapped to %v with total %v", orig, total)
	}
}

func TestRankedOutOfRange(t *testing.T) {
	if NewRanked([]float64{1, 2}, 3) != nil {
		t.Error("k>n should return nil")
	}
	if NewRanked([]float64{1}, -1) != nil {
		t.Error("k<0 should return nil")
	}
	var r *Ranked
	if _, _, ok := r.Next(); ok {
		t.Error("nil Ranked should yield nothing")
	}
}

func TestRankedZeroK(t *testing.T) {
	r := NewRanked([]float64{1, 2}, 0)
	idx, sum, ok := r.Next()
	if !ok || len(idx) != 0 || sum != 0 {
		t.Errorf("k=0 first = %v,%v,%v", idx, sum, ok)
	}
	if _, _, ok := r.Next(); ok {
		t.Error("k=0 should yield exactly once")
	}
}

func TestRankedNoDuplicates(t *testing.T) {
	scores := []float64{3, 3, 2, 2, 1}
	r := NewRanked(scores, 3)
	seen := map[string]bool{}
	count := 0
	for {
		idx, _, ok := r.Next()
		if !ok {
			break
		}
		key := comboKey(idx)
		if seen[key] {
			t.Fatalf("duplicate combination %v", idx)
		}
		seen[key] = true
		count++
	}
	if count != 10 {
		t.Errorf("enumerated %d, want C(5,3)=10", count)
	}
}

// Property: Ranked enumerates exactly the C(n,k) subsets in non-increasing
// sum order, agreeing with brute force.
func TestRankedCompleteAndOrderedProperty(t *testing.T) {
	f := func(raw [6]int8, kRaw uint8) bool {
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v)
		}
		k := int(kRaw)%len(scores) + 0
		r := NewRanked(scores, k)
		var sums []float64
		for {
			idx, sum, ok := r.Next()
			if !ok {
				break
			}
			// Verify sum matches the indices.
			check := 0.0
			for _, i := range r.Perm(idx) {
				check += scores[i]
			}
			if math.Abs(check-sum) > 1e-9 {
				return false
			}
			sums = append(sums, sum)
		}
		if int64(len(sums)) != Count(len(scores), k).Int64() {
			return false
		}
		for i := 1; i < len(sums); i++ {
			if sums[i] > sums[i-1]+1e-9 {
				return false
			}
		}
		// Brute-force comparison of the multiset of sums.
		var brute []float64
		ForEach(len(scores), k, func(idx []int) bool {
			s := 0.0
			for _, i := range idx {
				s += scores[i]
			}
			brute = append(brute, s)
			return true
		})
		sort.Float64s(brute)
		got := append([]float64(nil), sums...)
		sort.Float64s(got)
		for i := range brute {
			if math.Abs(brute[i]-got[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every yielded combination from ForEach is strictly increasing
// and within range.
func TestForEachWellFormedProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 9)
		k := int(kRaw % 9)
		ok := true
		ForEach(n, k, func(idx []int) bool {
			for i, v := range idx {
				if v < 0 || v >= n || (i > 0 && idx[i-1] >= v) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
