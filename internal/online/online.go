// Package online embeds diversification in query evaluation, the paper's
// Section 1 motivation for taking (Q, D) rather than the materialized
// result Q(D) as input: "we want to combine the two steps by embedding
// diversification in query evaluation, and stop as soon as top-ranked
// results are found (i.e., early termination), rather than to retrieve
// entire Q(D) in advance".
//
// Two procedures are provided. QRD streams answers out of the evaluator
// and stops — with a verified witness — as soon as the answers seen so far
// already contain a valid k-set, falling back to an exact verdict on the
// full answer set only when no early witness appears. Diversify maintains
// an anytime k-set by greedy insertion and single-tuple swaps as answers
// arrive, so a selection is available at any point of the evaluation.
//
// Early termination is sound for FMS and FMM, whose value depends only on
// the selected set. It is unsound for Fmono, whose diversity term averages
// distances over the entire Q(D) (the same asymmetry that makes
// QRD(CQ, Fmono) PSPACE-complete, Theorem 5.2); both procedures reject
// mono-objective instances.
package online

import (
	"context"
	"errors"
	"math"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/ctxpoll"
	"repro/internal/objective"
	"repro/internal/query/eval"
	"repro/internal/relation"
	"repro/internal/solver"
)

// ErrMono is returned for mono-objective instances: Fmono needs all of
// Q(D), so no early termination is possible.
var ErrMono = errors.New("online: Fmono depends on the entire Q(D); early termination is unsound")

// ErrConstrained is returned when compatibility constraints are present;
// the incremental witness checks do not search the constrained space.
var ErrConstrained = errors.New("online: compatibility constraints require the exact constrained solvers")

// Result is the outcome of an online procedure.
type Result struct {
	// Exists and Witness/Value answer QRD as solver.QRDExact would.
	Exists  bool
	Witness []relation.Tuple
	Value   float64
	// Seen counts the answers materialized before the procedure stopped.
	Seen int
	// Exhausted reports whether the full Q(D) was enumerated; false means
	// the procedure terminated early.
	Exhausted bool
	// Answers holds the full materialized Q(D) (in stream order) when
	// Exhausted: the stream already paid for it, so callers that cache
	// answer sets can keep it instead of re-evaluating.
	Answers []relation.Tuple
}

// Options tune the online procedures.
type Options struct {
	// CheckInterval is how many new answers arrive between witness checks
	// in QRD; 1 checks after every answer. Zero means the default of 1.
	CheckInterval int
	// CollectAnswers asks Diversify to retain the streamed tuples and
	// return them in Result.Answers when the stream exhausts, so callers
	// that cache answer sets can keep the pool the stream already paid
	// for. Off by default: the package exists to avoid materializing Q(D).
	// (QRD ignores the flag — it must pool answers anyway for its exact
	// fallback, so its Result.Answers is always set when Exhausted.)
	CollectAnswers bool
	// Pool, when HavePool is set, replays a previously captured arrival
	// order instead of evaluating the query: mutation-driven refreshes and
	// evaluation-driven streams then share one consumption path. The
	// evaluator is deterministic, so replaying the pool captured from an
	// exhausted stream at the same database generation is byte-identical
	// to re-streaming — minus the evaluation cost. The pool must hold
	// distinct tuples (a captured stream already deduplicates).
	Pool     []relation.Tuple
	HavePool bool
}

func (o Options) interval() int {
	if o.CheckInterval <= 0 {
		return 1
	}
	return o.CheckInterval
}

// supported rejects settings where streaming is unsound or unsupported.
func supported(in *core.Instance) error {
	if in.Obj.Kind == objective.Mono {
		return ErrMono
	}
	if in.Sigma.Len() > 0 {
		return ErrConstrained
	}
	return nil
}

// poolInstance wraps the streamed prefix as an instance whose Answers()
// are exactly the pool, so the pool can be handed to the offline solvers.
func poolInstance(in *core.Instance, pool []relation.Tuple) *core.Instance {
	shadow := &core.Instance{Query: in.Query, DB: in.DB, Obj: in.Obj, K: in.K, B: in.B,
		PlaneOff: in.PlaneOff, PlaneMaxBytes: in.PlaneMaxBytes}
	shadow.SetAnswers(pool)
	return shadow
}

// A feed delivers distinct answer tuples to yield in arrival order until
// yield declines or the source is exhausted, returning the error that cut
// the run short (nil on a clean finish, early stop included). The two
// sources — live query evaluation and a replayed pool — share every
// consumer this way: QRD's witness probing and Diversify's anytime swaps
// run identically whether tuples arrive from the evaluator or from a
// mutation-driven refresh replaying cached state.
type feed func(yield func(relation.Tuple) bool) error

// evalFeed streams the instance's query evaluation under ctx. Tuples are
// cloned out of the evaluator's binding array, so consumers may retain
// them.
func evalFeed(ctx context.Context, in *core.Instance) feed {
	return func(yield func(relation.Tuple) bool) error {
		ev := eval.New(in.Query, in.DB).WithContext(ctx)
		ev.Stream(func(t relation.Tuple) bool { return yield(t.Clone()) })
		if err := ev.Err(); err != nil {
			return err
		}
		// Small answer sets can finish streaming before the evaluator's
		// throttled poll ever fires; honour the cancellation regardless so
		// the contract does not depend on |Q(D)|.
		return ctx.Err()
	}
}

// replayFeed replays a captured pool in its recorded arrival order.
func replayFeed(ctx context.Context, pool []relation.Tuple) feed {
	return func(yield func(relation.Tuple) bool) error {
		poll := ctxpoll.New(ctx)
		for _, t := range pool {
			if poll.Stop() {
				return poll.Err()
			}
			if !yield(t) {
				return nil
			}
		}
		return ctx.Err()
	}
}

// source picks the feed for one call: the replayed pool when the caller
// supplied one, the live evaluation otherwise.
func source(ctx context.Context, in *core.Instance, opts Options) feed {
	if opts.HavePool {
		return replayFeed(ctx, opts.Pool)
	}
	return evalFeed(ctx, in)
}

// QRD decides whether a valid set for (Q, D, k, F, B) exists, stopping
// evaluation as soon as the streamed prefix of Q(D) contains one. Witness
// checks run a greedy probe on the pool every opts.CheckInterval answers;
// a greedy set reaching B is verified against F and returned immediately.
// If the stream ends without an early witness, the exact solver settles
// the verdict on the complete answer set, so QRD agrees with
// solver.QRDExact in every case. ctx cancels both the streaming evaluation
// and the closing exact search.
func QRD(ctx context.Context, in *core.Instance, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := supported(in); err != nil {
		return Result{}, err
	}
	interval := opts.interval()

	var res Result
	var pool []relation.Tuple
	// The streamed prefix is interned into a growing (streaming) score
	// plane: relevance is computed once per arrival and pairwise distances
	// memoize across probes, so repeated greedy probes touch each pair at
	// most once over the whole stream. The closing exact search reuses the
	// same memo.
	var splane *objective.Plane
	shadow := poolInstance(in, nil)
	if !in.PlaneOff {
		splane = objective.NewPlane(in.Obj, nil, objective.PlaneOptions{
			Streaming:      true,
			MaxMatrixBytes: in.PlaneMaxBytes, // bounds the distance memo
		})
	}
	sinceCheck := 0
	err := source(ctx, in, opts)(func(t relation.Tuple) bool {
		pool = append(pool, t)
		if splane != nil {
			splane.Append(t)
		}
		res.Seen++
		sinceCheck++
		if len(pool) < in.K || sinceCheck < interval {
			return true
		}
		sinceCheck = 0
		shadow.SetAnswers(pool)
		if splane != nil {
			shadow.SetPlane(splane)
		}
		probe, err := approx.GreedyContext(ctx, shadow)
		if err != nil {
			return false
		}
		if len(probe.Set) == in.K {
			// Verify directly against F: the greedy value is trusted only
			// after re-evaluation, keeping the early exit sound.
			if v := in.Obj.Eval(probe.Set, pool); v >= in.B {
				res.Exists = true
				res.Witness = probe.Set
				res.Value = v
				return false // stop the feed: early termination
			}
		}
		return true
	})
	if err != nil {
		return Result{Seen: res.Seen}, err
	}
	if res.Exists {
		return res, nil
	}

	// No early witness: the pool now holds all of Q(D); decide exactly,
	// reusing the streamed plane's interned scores and distance memo.
	res.Exhausted = true
	res.Answers = pool
	shadow.SetAnswers(pool)
	if splane != nil {
		shadow.SetPlane(splane)
	}
	exact, err := solver.QRDExactContext(ctx, shadow)
	if err != nil {
		return Result{Seen: res.Seen, Exhausted: true}, err
	}
	res.Exists = exact.Exists
	res.Witness = exact.Witness
	res.Value = exact.Value
	return res, nil
}

// Diversify maintains an anytime selection while streaming Q(D): each new
// answer joins the set while it has fewer than k members, and afterwards
// replaces the member whose exchange most improves F, if any improves it.
// The final set is a locally swap-optimal selection of the full answer
// stream — the online counterpart of approx.LocalSearchSwap. Seen always
// equals |Q(D)| (the stream is consumed fully); the point is that a valid
// selection was available throughout. ctx cancels the streaming evaluation.
func Diversify(ctx context.Context, in *core.Instance, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := supported(in); err != nil {
		return Result{}, err
	}

	var res Result
	var set, pool []relation.Tuple
	// The anytime set is scored through a windowed cache of size O(k²):
	// relevance per member and member-pair distances are computed once on
	// arrival/commit, so each swap evaluation is pure float arithmetic
	// instead of re-scoring the set through the interfaces. Memory stays
	// O(k²) — the package's reason to exist is not materializing Q(D).
	var w *swapScorer
	if !in.PlaneOff {
		w = newSwapScorer(in.Obj, in.K)
	}
	err := source(ctx, in, opts)(func(t relation.Tuple) bool {
		res.Seen++
		if opts.CollectAnswers {
			pool = append(pool, t)
		}
		if len(set) < in.K {
			set = append(set, t)
			if w != nil {
				w.addMember(t)
			}
			return true
		}
		var cur float64
		if w != nil {
			w.setCandidate(t)
			cur = w.eval(-1)
		} else {
			cur = in.Obj.Eval(set, nil)
		}
		bestIdx, bestVal := -1, cur
		for i := range set {
			var v float64
			if w != nil {
				v = w.eval(i)
			} else {
				old := set[i]
				set[i] = t
				v = in.Obj.Eval(set, nil)
				set[i] = old
			}
			if v > bestVal {
				bestIdx, bestVal = i, v
			}
		}
		if bestIdx >= 0 {
			set[bestIdx] = t
			if w != nil {
				w.commitSwap(bestIdx)
			}
		}
		return true
	})
	if err != nil {
		return Result{Seen: res.Seen}, err
	}
	res.Exhausted = true
	if opts.CollectAnswers {
		res.Answers = pool
	}
	if len(set) < in.K {
		return res, nil // fewer than k answers: no candidate set
	}
	res.Exists = true
	res.Witness = set
	if w != nil {
		res.Value = w.eval(-1)
	} else {
		res.Value = in.Obj.Eval(set, nil)
	}
	return res, nil
}

// swapScorer caches the relevance vector and pairwise distance matrix of
// the current anytime set plus one candidate, mirroring Objective.Eval's
// accumulation order exactly so its values agree with the interface path to
// the last bit (for symmetric δdis, per the paper's contract). All state is
// O(k²) regardless of stream length.
type swapScorer struct {
	o       *objective.Objective
	members []relation.Tuple
	rel     []float64
	dis     [][]float64 // symmetric, zero diagonal, members × members

	cand    relation.Tuple
	candRel float64
	candDis []float64 // candidate ↔ each member
}

func newSwapScorer(o *objective.Objective, k int) *swapScorer {
	return &swapScorer{
		o:       o,
		members: make([]relation.Tuple, 0, k),
		rel:     make([]float64, 0, k),
		candDis: make([]float64, 0, k),
	}
}

// addMember appends a tuple during the fill phase (|set| < k).
func (w *swapScorer) addMember(t relation.Tuple) {
	row := make([]float64, 0, cap(w.rel))
	for i, m := range w.members {
		d := w.o.Dis.Dis(m, t)
		row = append(row, d)
		w.dis[i] = append(w.dis[i], d)
	}
	row = append(row, 0)
	w.dis = append(w.dis, row)
	w.members = append(w.members, t)
	w.rel = append(w.rel, w.o.Rel.Rel(t))
	w.candDis = append(w.candDis, 0)
}

// setCandidate scores a newly arrived tuple against every member.
func (w *swapScorer) setCandidate(t relation.Tuple) {
	w.cand = t
	w.candRel = w.o.Rel.Rel(t)
	for i, m := range w.members {
		w.candDis[i] = w.o.Dis.Dis(m, t)
	}
}

// eval computes F of the current set with the member at position replace
// substituted by the candidate (replace < 0 evaluates the set as-is),
// mirroring Eval's loop order.
func (w *swapScorer) eval(replace int) float64 {
	k := len(w.members)
	relAt := func(i int) float64 {
		if i == replace {
			return w.candRel
		}
		return w.rel[i]
	}
	disAt := func(a, b int) float64 {
		if a == replace {
			return w.candDis[b]
		}
		if b == replace {
			return w.candDis[a]
		}
		return w.dis[a][b]
	}
	switch w.o.Kind {
	case objective.MaxSum:
		if k == 0 {
			return 0
		}
		relSum := 0.0
		for i := 0; i < k; i++ {
			relSum += relAt(i)
		}
		disSum := 0.0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				disSum += disAt(i, j)
			}
		}
		return float64(k-1)*(1-w.o.Lambda)*relSum + w.o.Lambda*2*disSum
	case objective.MaxMin:
		if k == 0 {
			return 0
		}
		minRel := math.Inf(1)
		for i := 0; i < k; i++ {
			if r := relAt(i); r < minRel {
				minRel = r
			}
		}
		minDis := 0.0
		if k >= 2 {
			minDis = math.Inf(1)
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if d := disAt(i, j); d < minDis {
						minDis = d
					}
				}
			}
		}
		return (1-w.o.Lambda)*minRel + w.o.Lambda*minDis
	default:
		// Mono is rejected by supported(); unreachable.
		return 0
	}
}

// commitSwap installs the candidate as member i.
func (w *swapScorer) commitSwap(i int) {
	w.members[i] = w.cand
	w.rel[i] = w.candRel
	for j := range w.members {
		if j != i {
			w.dis[i][j] = w.candDis[j]
			w.dis[j][i] = w.candDis[j]
		}
	}
	w.dis[i][i] = 0
	w.candDis[i] = 0
	w.cand = nil
}
