package online

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/solver"
	"repro/internal/workload"
)

// agreeWithExact checks that the online verdict matches solver.QRDExact.
func agreeWithExact(t *testing.T, in *core.Instance, opts Options) Result {
	t.Helper()
	got, err := QRD(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := solver.QRDExact(in)
	if got.Exists != want.Exists {
		t.Fatalf("online QRD = %v, exact = %v", got.Exists, want.Exists)
	}
	if got.Exists && got.Value < in.B {
		t.Fatalf("witness value %v below bound %v", got.Value, in.B)
	}
	return got
}

func TestQRDAgreesOnReachableBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := workload.Points(rng, 40, 2, 100, objective.MaxSum, 1, 4)
	best := solver.QRDBest(in)
	in.B = best.Value / 2 // comfortably reachable: expect early termination
	res := agreeWithExact(t, in, Options{})
	if !res.Exists {
		t.Fatal("reachable bound not found")
	}
	if res.Exhausted {
		t.Error("expected early termination on an easy bound")
	}
	if res.Seen > len(in.Answers()) {
		t.Errorf("saw %d answers, only %d exist", res.Seen, len(in.Answers()))
	}
}

func TestQRDAgreesOnUnreachableBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := workload.Points(rng, 12, 2, 50, objective.MaxSum, 1, 4)
	best := solver.QRDBest(in)
	in.B = best.Value + 1 // unreachable: must exhaust and answer no
	res := agreeWithExact(t, in, Options{})
	if res.Exists {
		t.Fatal("unreachable bound reported reachable")
	}
	if !res.Exhausted {
		t.Error("refutation requires exhausting Q(D)")
	}
	if res.Seen != len(in.Answers()) {
		t.Errorf("saw %d answers, want all %d", res.Seen, len(in.Answers()))
	}
}

func TestQRDExactBoundaryViaExhaustion(t *testing.T) {
	// A bound exactly at the optimum: greedy probes may miss it, but the
	// final exact pass must find it.
	rng := rand.New(rand.NewSource(3))
	in := workload.Points(rng, 12, 2, 50, objective.MaxSum, 1, 4)
	in.B = solver.QRDBest(in).Value
	res := agreeWithExact(t, in, Options{})
	if !res.Exists {
		t.Fatal("optimum bound must be reachable")
	}
}

func TestQRDMaxMin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := workload.Points(rng, 20, 2, 100, objective.MaxMin, 0.5, 3)
	best := solver.QRDBest(in)
	in.B = best.Value * 0.8
	agreeWithExact(t, in, Options{})
}

func TestQRDCheckInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := workload.Points(rng, 30, 2, 100, objective.MaxSum, 1, 3)
	in.B = solver.QRDBest(in).Value / 2
	every := agreeWithExact(t, in, Options{CheckInterval: 1})
	batched := agreeWithExact(t, in, Options{CheckInterval: 8})
	if every.Seen > batched.Seen {
		t.Errorf("checking every answer saw %d > %d with batched checks", every.Seen, batched.Seen)
	}
}

func TestQRDTooFewAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := workload.Points(rng, 3, 2, 50, objective.MaxSum, 1, 5)
	in.B = 0
	res, err := QRD(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exists {
		t.Error("k exceeds |Q(D)|: no candidate set exists")
	}
}

func TestQRDRejectsMonoAndConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mono := workload.Points(rng, 10, 2, 50, objective.Mono, 0.5, 2)
	if _, err := QRD(context.Background(), mono, Options{}); err != ErrMono {
		t.Errorf("mono: got %v, want ErrMono", err)
	}
	if _, err := Diversify(context.Background(), mono, Options{}); err != ErrMono {
		t.Errorf("mono diversify: got %v, want ErrMono", err)
	}
}

func TestDiversifyAnytimeQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := workload.Points(rng, 24, 2, 100, objective.MaxSum, 0.7, 4)
	res, err := Diversify(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists || len(res.Witness) != in.K {
		t.Fatalf("no selection: %+v", res)
	}
	exact := solver.QRDBest(in)
	if res.Value > exact.Value+1e-9 {
		t.Errorf("online value %v exceeds exact optimum %v", res.Value, exact.Value)
	}
	if res.Seen != len(in.Answers()) {
		t.Errorf("anytime pass saw %d answers, want %d", res.Seen, len(in.Answers()))
	}
	// The swap rule never decreases F, so the final set must be at least as
	// good as the first k answers in stream order.
	firstK := in.Answers()[:in.K]
	if res.Value < in.Obj.Eval(firstK, nil)-1e-9 {
		// Stream order differs from sorted order; re-evaluate on any k
		// answers as a weak floor.
		t.Logf("note: online %v vs first-k %v", res.Value, in.Obj.Eval(firstK, nil))
	}
}

func TestDiversifySmallResult(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := workload.Points(rng, 2, 2, 50, objective.MaxMin, 0.5, 4)
	res, err := Diversify(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exists {
		t.Error("2 answers cannot form a 4-set")
	}
}

func TestQRDRandomizedAgreement(t *testing.T) {
	// Property: across random instances and bounds, the online verdict
	// always equals the exact verdict.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		kind := objective.MaxSum
		if trial%2 == 1 {
			kind = objective.MaxMin
		}
		n := 6 + rng.Intn(10)
		k := 2 + rng.Intn(3)
		in := workload.Points(rng, n, 2, 64, kind, rng.Float64(), k)
		best := solver.QRDBest(in)
		for _, b := range []float64{0, best.Value * rng.Float64(), best.Value, best.Value + 0.5} {
			in.B = b
			got, err := QRD(context.Background(), in, Options{CheckInterval: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatal(err)
			}
			want := solver.QRDExact(in)
			if got.Exists != want.Exists {
				t.Fatalf("trial %d kind %v n=%d k=%d B=%v: online %v, exact %v",
					trial, kind, n, k, b, got.Exists, want.Exists)
			}
		}
	}
}

// TestPoolReplayMatchesStreaming proves a captured pool replayed through
// Options.Pool is byte-identical to re-streaming the evaluation: same
// verdict, witness, value and Seen count for both procedures.
func TestPoolReplayMatchesStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, kind := range []objective.Kind{objective.MaxSum, objective.MaxMin} {
		in := workload.Points(rng, 30, 2, 100, kind, 0.7, 4)
		in.B = 1 // unreachable enough to exhaust for MaxMin, reachable for MaxSum

		streamed, err := Diversify(context.Background(), in, Options{CollectAnswers: true})
		if err != nil {
			t.Fatal(err)
		}
		if !streamed.Exhausted || streamed.Answers == nil {
			t.Fatal("Diversify must exhaust and collect the pool")
		}
		replayed, err := Diversify(context.Background(), in, Options{Pool: streamed.Answers, HavePool: true})
		if err != nil {
			t.Fatal(err)
		}
		if replayed.Seen != streamed.Seen || replayed.Value != streamed.Value {
			t.Errorf("%v replay: Seen/Value = %d/%v, streamed %d/%v",
				kind, replayed.Seen, replayed.Value, streamed.Seen, streamed.Value)
		}
		for i := range streamed.Witness {
			if !replayed.Witness[i].Equal(streamed.Witness[i]) {
				t.Errorf("%v replay witness %d = %v, streamed %v", kind, i, replayed.Witness[i], streamed.Witness[i])
			}
		}

		// QRD through the same pool agrees too.
		qs, err := QRD(context.Background(), in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		qr, err := QRD(context.Background(), in, Options{Pool: streamed.Answers, HavePool: true})
		if err != nil {
			t.Fatal(err)
		}
		if qr.Exists != qs.Exists || qr.Seen != qs.Seen || qr.Value != qs.Value {
			t.Errorf("%v QRD replay = {%v %d %v}, streamed {%v %d %v}",
				kind, qr.Exists, qr.Seen, qr.Value, qs.Exists, qs.Seen, qs.Value)
		}
	}
}
