// Package fsio abstracts the filesystem operations the durability layer
// performs, so fault-injection harnesses (internal/faultfs) can interpose
// on exactly the calls whose failure a production deployment must survive:
// writes, fsyncs and renames. The OS implementation is the default
// everywhere; tests swap in a wrapped FS through wal.Options.FS and
// DurabilityConfig.FS.
package fsio

import (
	"io"
	"os"
)

// File is the writable-file surface the WAL and snapshot writers use.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened under.
	Name() string
}

// FS is the write-path filesystem surface of the durability subsystem.
// Every operation mirrors its os counterpart.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory so creates and renames within it are
	// durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// Default is the shared real-filesystem instance.
var Default FS = OS{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
