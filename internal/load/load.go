// Package load installs data into an engine for the command-line tools:
// TSV relations and the built-in gift-shop demo catalog. It is the single
// definition both divcli and divserve share, so the demo data pinned by
// the example golden transcripts and the serve golden transcript cannot
// silently diverge. The Filter variants install only rows a predicate
// keeps — divserve's shard mode partitions the same sources by routing
// hash, so every row lands on exactly one shard.
package load

import (
	"fmt"
	"os"

	diversification "repro"
	"repro/internal/relation"
	"repro/internal/tsvio"
	"repro/internal/value"
)

// TSV reads a relation from a tab-separated file whose first line names
// the attributes and installs it into the engine.
func TSV(e *diversification.Engine, name, file string) error {
	return TSVFilter(e, name, file, nil)
}

// TSVFilter is TSV keeping only rows for which keep returns true (nil
// keeps everything). The table is created either way, so an empty
// partition is still a valid relation.
func TSVFilter(e *diversification.Engine, name, file string, keep func(row []interface{}) bool) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := tsvio.Read(name, f)
	if err != nil {
		return err
	}
	if err := e.CreateTable(name, rel.Schema().Attrs...); err != nil {
		return err
	}
	for _, t := range rel.Sorted() {
		row := tupleArgs(t)
		if keep != nil && !keep(row) {
			continue
		}
		if err := e.Insert(name, row...); err != nil {
			return fmt.Errorf("%s: %v", file, err)
		}
	}
	return nil
}

// tupleArgs converts a tuple to the facade's interface{} row form.
func tupleArgs(t relation.Tuple) []interface{} {
	args := make([]interface{}, len(t))
	for i, v := range t {
		switch v.Kind() {
		case value.KindInt:
			args[i] = v.AsInt()
		case value.KindFloat:
			args[i] = v.AsFloat()
		case value.KindBool:
			args[i] = v.AsBool()
		default:
			args[i] = v.AsString()
		}
	}
	return args
}

// Demo installs the Example 1.1 gift-shop catalog.
func Demo(e *diversification.Engine) {
	DemoFilter(e, nil)
}

// DemoFilter is Demo keeping only rows for which keep returns true (nil
// keeps everything): the shard-mode partition of the demo catalog.
func DemoFilter(e *diversification.Engine, keep func(row []interface{}) bool) {
	e.MustCreateTable("catalog", "item", "type", "price", "inStock")
	rows := []struct {
		item, typ    string
		price, stock int
	}{
		{"silver ring", "jewelry", 28, 2},
		{"adventure novel", "book", 22, 9},
		{"jigsaw puzzle", "toy", 25, 4},
		{"silk scarf", "fashion", 30, 1},
		{"acrylic paints", "artsy", 21, 7},
		{"stunt kite", "toy", 38, 3},
		{"charm bracelet", "jewelry", 35, 5},
		{"science kit", "educational", 27, 6},
		{"poetry anthology", "book", 18, 8},
		{"board game", "toy", 32, 2},
	}
	for _, r := range rows {
		row := []interface{}{r.item, r.typ, r.price, r.stock}
		if keep != nil && !keep(row) {
			continue
		}
		e.MustInsert("catalog", row...)
	}
}
