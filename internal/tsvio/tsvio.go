// Package tsvio reads and writes relations as tab-separated files: the
// first line names the attributes, every following line is one tuple.
// Field values parse as int, then float, then bool, then string — the same
// preference order the value package's literal parser uses, minus quoting
// (TSV fields are raw).
//
// It is the interchange format between divgen (which emits workloads) and
// divcli (which loads them), and a convenient way to get real data into an
// Engine.
package tsvio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/value"
)

// ParseField interprets one TSV field: int, float, bool, then string.
func ParseField(s string) value.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return value.Float(f)
	}
	switch s {
	case "true":
		return value.Bool(true)
	case "false":
		return value.Bool(false)
	}
	return value.Str(s)
}

// Read parses a relation named name from TSV input. Blank lines are
// skipped; every data line must have exactly as many fields as the header.
func Read(name string, r io.Reader) (*relation.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("tsvio: %s: %v", name, err)
		}
		return nil, fmt.Errorf("tsvio: %s: empty input", name)
	}
	attrs := strings.Split(strings.TrimRight(sc.Text(), "\r\n"), "\t")
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("tsvio: %s: empty attribute name at column %d", name, i+1)
		}
	}
	rel := relation.NewRelation(relation.NewSchema(name, attrs...))
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != len(attrs) {
			return nil, fmt.Errorf("tsvio: %s:%d: %d fields, want %d", name, line, len(fields), len(attrs))
		}
		t := make(relation.Tuple, len(fields))
		for i, f := range fields {
			t[i] = ParseField(f)
		}
		rel.Insert(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsvio: %s: %v", name, err)
	}
	return rel, nil
}

// Write emits the relation as TSV, header first, tuples in canonical
// (sorted) order so output is deterministic.
func Write(w io.Writer, r *relation.Relation) error {
	if _, err := fmt.Fprintln(w, strings.Join(r.Schema().Attrs, "\t")); err != nil {
		return err
	}
	for _, t := range r.Sorted() {
		fields := make([]string, len(t))
		for i, v := range t {
			fields[i] = v.AsString()
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Update is one event of a dynamic workload's update stream: a tuple
// inserted into or deleted from a named relation, or a checkpoint at which
// a replaying consumer re-solves. The textual form is one event per line:
//
//	R<TAB>v1<TAB>v2...      insert (v1, v2, ...) into R
//	-R<TAB>v1<TAB>v2...     delete (v1, v2, ...) from R
//	--                      checkpoint (blank lines work too)
//	# ...                   comment
type Update struct {
	Checkpoint bool
	Delete     bool
	Rel        string
	Tuple      relation.Tuple
}

// ReadUpdates parses an update stream. Consecutive checkpoints collapse to
// one, and a trailing checkpoint is implied by the consumer, not required
// in the file.
func ReadUpdates(r io.Reader) ([]Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Update
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if strings.HasPrefix(text, "#") {
			continue
		}
		if text == "" || text == "--" {
			if len(out) > 0 && !out[len(out)-1].Checkpoint {
				out = append(out, Update{Checkpoint: true})
			}
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("tsvio: updates:%d: want relation<TAB>values..., got %q", line, text)
		}
		u := Update{Rel: fields[0]}
		if strings.HasPrefix(u.Rel, "-") {
			u.Delete = true
			u.Rel = u.Rel[1:]
		}
		if u.Rel == "" {
			return nil, fmt.Errorf("tsvio: updates:%d: empty relation name", line)
		}
		u.Tuple = make(relation.Tuple, len(fields)-1)
		for i, f := range fields[1:] {
			u.Tuple[i] = ParseField(f)
		}
		out = append(out, u)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsvio: updates: %v", err)
	}
	return out, nil
}

// WriteUpdates emits an update stream in the textual form ReadUpdates
// parses.
func WriteUpdates(w io.Writer, updates []Update) error {
	for _, u := range updates {
		if u.Checkpoint {
			if _, err := fmt.Fprintln(w, "--"); err != nil {
				return err
			}
			continue
		}
		rel := u.Rel
		if u.Delete {
			rel = "-" + rel
		}
		fields := make([]string, 0, len(u.Tuple)+1)
		fields = append(fields, rel)
		for _, v := range u.Tuple {
			fields = append(fields, v.AsString())
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, "\t")); err != nil {
			return err
		}
	}
	return nil
}
