// Package tsvio reads and writes relations as tab-separated files: the
// first line names the attributes, every following line is one tuple.
// Field values parse as int, then float, then bool, then string — the same
// preference order the value package's literal parser uses, minus quoting
// (TSV fields are raw).
//
// It is the interchange format between divgen (which emits workloads) and
// divcli (which loads them), and a convenient way to get real data into an
// Engine.
package tsvio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/value"
)

// ParseField interprets one TSV field: int, float, bool, then string.
func ParseField(s string) value.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return value.Float(f)
	}
	switch s {
	case "true":
		return value.Bool(true)
	case "false":
		return value.Bool(false)
	}
	return value.Str(s)
}

// Read parses a relation named name from TSV input. Blank lines are
// skipped; every data line must have exactly as many fields as the header.
func Read(name string, r io.Reader) (*relation.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("tsvio: %s: %v", name, err)
		}
		return nil, fmt.Errorf("tsvio: %s: empty input", name)
	}
	attrs := strings.Split(strings.TrimRight(sc.Text(), "\r\n"), "\t")
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("tsvio: %s: empty attribute name at column %d", name, i+1)
		}
	}
	rel := relation.NewRelation(relation.NewSchema(name, attrs...))
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != len(attrs) {
			return nil, fmt.Errorf("tsvio: %s:%d: %d fields, want %d", name, line, len(fields), len(attrs))
		}
		t := make(relation.Tuple, len(fields))
		for i, f := range fields {
			t[i] = ParseField(f)
		}
		rel.Insert(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsvio: %s: %v", name, err)
	}
	return rel, nil
}

// Write emits the relation as TSV, header first, tuples in canonical
// (sorted) order so output is deterministic.
func Write(w io.Writer, r *relation.Relation) error {
	if _, err := fmt.Fprintln(w, strings.Join(r.Schema().Attrs, "\t")); err != nil {
		return err
	}
	for _, t := range r.Sorted() {
		fields := make([]string, len(t))
		for i, v := range t {
			fields[i] = v.AsString()
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, "\t")); err != nil {
			return err
		}
	}
	return nil
}
