package tsvio

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/value"
)

func TestParseFieldPreference(t *testing.T) {
	cases := []struct {
		in   string
		want value.Value
	}{
		{"42", value.Int(42)},
		{"-7", value.Int(-7)},
		{"3.5", value.Float(3.5)},
		{"true", value.Bool(true)},
		{"false", value.Bool(false)},
		{"hello", value.Str("hello")},
		{"", value.Str("")},
		{"12abc", value.Str("12abc")},
		{"1e3", value.Float(1000)},
	}
	for _, c := range cases {
		if got := ParseField(c.in); !value.Equal(got, c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseField(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestReadBasic(t *testing.T) {
	src := "id\tname\tprice\n1\twidget\t9.5\n2\tgadget\t12\n\n3\tdoohickey\ttrue\n"
	rel, err := Read("items", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema().Name != "items" || rel.Schema().Arity() != 3 {
		t.Fatalf("schema wrong: %v", rel.Schema())
	}
	if rel.Len() != 3 {
		t.Fatalf("got %d tuples, want 3 (blank line skipped)", rel.Len())
	}
	want := relation.Tuple{value.Int(1), value.Str("widget"), value.Float(9.5)}
	if !rel.Contains(want) {
		t.Errorf("missing tuple %v", want)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read("r", strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read("r", strings.NewReader("a\tb\n1\n")); err == nil {
		t.Error("field-count mismatch should fail")
	}
	if _, err := Read("r", strings.NewReader("a\t\tc\n")); err == nil {
		t.Error("empty attribute name should fail")
	}
}

func TestReadDeduplicates(t *testing.T) {
	rel, err := Read("r", strings.NewReader("x\n1\n1\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("set semantics: %d tuples, want 2", rel.Len())
	}
}

func TestReadFailingReader(t *testing.T) {
	if _, err := Read("r", failingReader{}); err == nil {
		t.Error("reader error should surface")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("boom") }

// TestRoundTrip is the write/read inverse property over random relations
// with TSV-safe values.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := relation.NewRelation(relation.NewSchema("R", "a", "b", "c"))
		for i := 0; i < 1+r.Intn(20); i++ {
			rel.Insert(relation.Tuple{
				value.Int(r.Int63n(100)),
				value.Str(randWord(r)),
				value.Float(float64(r.Intn(1000)) / 4),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, rel); err != nil {
			return false
		}
		back, err := Read("R", bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if back.Len() != rel.Len() {
			return false
		}
		for _, tp := range rel.Tuples() {
			if !back.Contains(tp) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randWord emits a short word that does not collide with numeric or boolean
// literals and contains no tabs/newlines.
func randWord(r *rand.Rand) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	n := 3 + r.Intn(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(letters[r.Intn(len(letters))])
	}
	return "w" + b.String()
}

func TestWriteDeterministic(t *testing.T) {
	rel := relation.NewRelation(relation.NewSchema("R", "x"))
	rel.Insert(relation.Tuple{value.Int(3)})
	rel.Insert(relation.Tuple{value.Int(1)})
	rel.Insert(relation.Tuple{value.Int(2)})
	var a, b bytes.Buffer
	if err := Write(&a, rel); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, rel); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("output not deterministic")
	}
	if !strings.HasPrefix(a.String(), "x\n1\n2\n3\n") {
		t.Errorf("not in canonical order:\n%s", a.String())
	}
}

func TestUpdatesRoundTrip(t *testing.T) {
	updates := []Update{
		{Rel: "R", Tuple: relation.Ints(1, 2)},
		{Rel: "R", Tuple: relation.Ints(3, 4)},
		{Checkpoint: true},
		{Delete: true, Rel: "R", Tuple: relation.Ints(1, 2)},
		{Rel: "S", Tuple: relation.Tuple{value.Str("x"), value.Float(1.5), value.Bool(true)}},
		{Checkpoint: true},
	}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, updates); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(updates) {
		t.Fatalf("round-trip length %d, want %d\n%s", len(got), len(updates), buf.String())
	}
	for i, u := range updates {
		g := got[i]
		if g.Checkpoint != u.Checkpoint || g.Delete != u.Delete || g.Rel != u.Rel {
			t.Errorf("update %d = %+v, want %+v", i, g, u)
			continue
		}
		if !u.Checkpoint && !g.Tuple.Equal(u.Tuple) {
			t.Errorf("update %d tuple = %v, want %v", i, g.Tuple, u.Tuple)
		}
	}
}

func TestReadUpdatesSyntax(t *testing.T) {
	// Comments and blank-line checkpoints; consecutive checkpoints collapse.
	in := "# a comment\nR\t1\n\n\n--\nR\t2\n"
	got, err := ReadUpdates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		cp  bool
		val int64
	}{{false, 1}, {true, 0}, {false, 2}}
	if len(got) != len(want) {
		t.Fatalf("parsed %d updates, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Checkpoint != w.cp {
			t.Errorf("update %d checkpoint = %v, want %v", i, got[i].Checkpoint, w.cp)
		}
		if !w.cp && got[i].Tuple[0].AsInt() != w.val {
			t.Errorf("update %d value = %v, want %d", i, got[i].Tuple[0], w.val)
		}
	}
	for _, bad := range []string{"R\n", "-\t1\n"} {
		if _, err := ReadUpdates(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadUpdates(%q) should fail", bad)
		}
	}
}
