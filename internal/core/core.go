// Package core defines the shared problem-instance types of the paper's
// Section 4: the three analysis problems QRD (query result diversification),
// DRP (diversity ranking) and RDC (result diversity counting), and the
// Instance structure that bundles their common input — a database D, a query
// Q in some language LQ, an objective function F built from δrel, δdis and λ,
// the set size k, the bound B or rank r, and optionally a set Σ of
// compatibility constraints (Section 9).
package core

import (
	"context"
	"fmt"

	"repro/internal/compat"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/query/eval"
	"repro/internal/relation"
)

// Problem identifies one of the paper's three diversification problems.
type Problem int

// The three problems of Section 4.1.
const (
	QRD Problem = iota // does a valid set exist? (decision)
	DRP                // is rank(U) <= r? (decision)
	RDC                // how many valid sets are there? (counting)
)

// String returns the paper's abbreviation.
func (p Problem) String() string {
	switch p {
	case QRD:
		return "QRD"
	case DRP:
		return "DRP"
	case RDC:
		return "RDC"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Instance is a problem instance shared by QRD, DRP and RDC.
type Instance struct {
	Query *query.Query
	DB    *relation.Database
	Obj   *objective.Objective
	K     int // candidate-set size k >= 1

	// B is the objective bound for QRD and RDC (F(U) >= B is "valid").
	B float64
	// R is the rank threshold for DRP (is rank(U) <= R?).
	R int
	// U is the candidate set whose rank DRP assesses.
	U []relation.Tuple

	// Sigma optionally holds compatibility constraints of Cm; nil means
	// the unconstrained problems of Sections 5-8.
	Sigma *compat.Set

	// Parallelism is the worker count for the exact branch-and-bound
	// search: values above 1 split the search tree into frames solved by
	// that many goroutines against a shared atomic incumbent bound. 0 and 1
	// run the sequential walk. The parallel search returns byte-identical
	// results to the sequential one; only Stats differ.
	Parallelism int
	// ParallelDepth is the tree depth at which the parallel search splits
	// the selection prefixes into frames; 0 picks a depth automatically
	// from |Q(D)| and the worker count.
	ParallelDepth int

	// PlaneOff disables the interned score plane: solvers fall back to
	// scoring through the Relevance/Distance interfaces directly. Used by
	// differential tests and the before/after benchmarks.
	PlaneOff bool
	// PlaneMaxBytes caps the plane's materialized distance matrix; 0 means
	// the objective package default. Above the cap, distances are served
	// from the plane's sharded memoizing cache instead.
	PlaneMaxBytes int64
	// PlaneRegime requests a distance-storage regime for the plane
	// (materialized matrix, float32 tiles, metric index, or memo cache);
	// the zero value (objective.RegimeAuto) resolves from the answer count
	// and PlaneMaxBytes.
	PlaneRegime objective.Regime

	answers     []relation.Tuple // memoized Q(D)
	haveAnswers bool             // distinguishes an empty memo from no memo
	plane       *objective.Plane // memoized score plane over answers
	answerIndex map[string]int   // memoized Tuple.Key() -> answers index
}

// Answers computes (and memoizes) the answer set Q(D) in a deterministic
// order. Solvers that must avoid materializing Q(D) (the paper's
// early-termination motivation) use eval.Member directly instead.
func (in *Instance) Answers() []relation.Tuple {
	if !in.haveAnswers {
		res := eval.Evaluate(in.Query, in.DB)
		in.answers = res.Sorted()
		in.haveAnswers = true
	}
	return in.answers
}

// AnswersContext is Answers under a cancellation context: the (possibly
// exponential, for FO queries) evaluation of Q(D) is interruptible, and the
// memo is only filled by a completed evaluation.
func (in *Instance) AnswersContext(ctx context.Context) ([]relation.Tuple, error) {
	if in.haveAnswers {
		return in.answers, nil
	}
	res, err := eval.EvaluateContext(ctx, in.Query, in.DB)
	if err != nil {
		return nil, err
	}
	in.answers = res.Sorted()
	in.haveAnswers = true
	return in.answers, nil
}

// SetAnswers overrides the memoized answer set; used by identity-query
// instances where Q(D) = D is available without evaluation, and by tests.
// A nil slice is a valid (empty) answer set, not an unset memo; use
// ResetAnswers to force re-evaluation.
func (in *Instance) SetAnswers(ts []relation.Tuple) {
	in.answers = ts
	in.haveAnswers = true
	in.plane = nil
	in.answerIndex = nil
}

// ResetAnswers discards the memoized answer set so the next Answers call
// re-evaluates the query; used by benchmarks that measure evaluation cost.
func (in *Instance) ResetAnswers() {
	in.answers = nil
	in.haveAnswers = false
	in.plane = nil
	in.answerIndex = nil
}

// Plane returns the interned score plane over Answers(), building it lazily
// on first use (the one-shot path; Prepared handles inject a cached plane
// via SetPlane instead). Returns nil when PlaneOff disables it.
func (in *Instance) Plane() *objective.Plane {
	p, _ := in.PlaneContext(context.Background())
	return p
}

// PlaneContext is Plane under a cancellation context: both the answer-set
// evaluation and the plane's relevance fill poll ctx. The instance-level
// plane is built unmaterialized — distances memoize on demand — so
// relevance-only consumers stay O(n); the exact search materializes the
// matrix itself when the memory guard allows.
func (in *Instance) PlaneContext(ctx context.Context) (*objective.Plane, error) {
	if in.PlaneOff || in.Obj == nil {
		return nil, nil
	}
	if in.plane != nil {
		return in.plane, nil
	}
	answers, err := in.AnswersContext(ctx)
	if err != nil {
		return nil, err
	}
	p, err := objective.NewPlaneContext(ctx, in.Obj, answers, objective.PlaneOptions{MaxMatrixBytes: in.PlaneMaxBytes, Regime: in.PlaneRegime})
	if err != nil {
		return nil, err
	}
	in.plane = p
	return p, nil
}

// SetPlane installs an externally built (e.g. Prepared-cached or streaming)
// score plane. The plane's interned answers must be Answers() in the same
// order; callers installing both use SetAnswers first, since SetAnswers
// invalidates the plane memo.
func (in *Instance) SetPlane(p *objective.Plane) { in.plane = p }

// SetAnswerIndex installs an externally maintained Tuple.Key() -> index map
// over Answers() — the incrementally updated index a Prepared handle keeps
// alongside its cached answer set, injected so per-call instances skip the
// O(n) rebuild. Callers installing answers, plane and index use SetAnswers
// first (it invalidates both memos), then SetPlane/SetAnswerIndex. The map
// must index exactly Answers() in order; it is shared, and solvers only
// read it.
func (in *Instance) SetAnswerIndex(idx map[string]int) { in.answerIndex = idx }

// AnswerIndex returns the memoized Tuple.Key() -> index map over Answers(),
// built on first use and invalidated by SetAnswers/ResetAnswers. IsCandidate
// and the heuristics' seed interning use it instead of rebuilding the map
// per call.
func (in *Instance) AnswerIndex() map[string]int {
	if in.answerIndex == nil {
		answers := in.Answers()
		idx := make(map[string]int, len(answers))
		for i, t := range answers {
			idx[t.Key()] = i
		}
		in.answerIndex = idx
	}
	return in.answerIndex
}

// ResultSchema is the schema RQ of the query result: one attribute per head
// variable.
func (in *Instance) ResultSchema() relation.Schema {
	return relation.NewSchema(in.Query.Name, in.Query.Head...)
}

// Eval scores a candidate set under the instance's objective, supplying the
// answer space that Fmono needs.
func (in *Instance) Eval(u []relation.Tuple) float64 {
	return in.Obj.Eval(u, in.Answers())
}

// SatisfiesConstraints reports U ⊨ Σ (trivially true without constraints).
func (in *Instance) SatisfiesConstraints(u []relation.Tuple) bool {
	if in.Sigma == nil {
		return true
	}
	return in.Sigma.Satisfies(u, in.ResultSchema())
}

// IsCandidate reports whether u is a candidate set for (Q, D, k) — and for
// (Q, D, Σ, k) when constraints are present: u ⊆ Q(D), |u| = k, u ⊨ Σ.
// Membership is checked against the memoized answer set.
func (in *Instance) IsCandidate(u []relation.Tuple) bool {
	if len(u) != in.K {
		return false
	}
	seen := make(map[string]bool, len(u))
	for _, t := range u {
		k := t.Key()
		if seen[k] {
			return false // not a set
		}
		seen[k] = true
	}
	idx := in.AnswerIndex()
	for _, t := range u {
		if _, ok := idx[t.Key()]; !ok {
			return false
		}
	}
	return in.SatisfiesConstraints(u)
}

// IsValid reports whether u is a valid set for (Q, D, k, F, B): a candidate
// set with F(u) >= B.
func (in *Instance) IsValid(u []relation.Tuple) bool {
	return in.IsCandidate(u) && in.Eval(u) >= in.B
}

// Language classifies the instance's query.
func (in *Instance) Language() query.Language { return in.Query.Classify() }

// Setting describes a cell of the paper's complexity tables: which problem,
// which language, which objective, and which special-case restrictions
// apply. The bench harness uses it to label experiments and to look up the
// proved bound.
type Setting struct {
	Problem     Problem
	Language    query.Language
	Objective   objective.Kind
	Data        bool // data complexity (fixed query) vs combined
	Lambda0     bool // λ = 0: relevance only (Section 8)
	Lambda1     bool // λ = 1: diversity only (Section 8)
	ConstantK   bool // k is a predefined constant (Section 8)
	Constraints bool // compatibility constraints present (Section 9)
}

// String renders the setting compactly, e.g.
// "QRD(CQ, FMS) combined λ=1 +Σ".
func (s Setting) String() string {
	out := fmt.Sprintf("%s(%s, %s)", s.Problem, s.Language, s.Objective)
	if s.Data {
		out += " data"
	} else {
		out += " combined"
	}
	if s.Lambda0 {
		out += " λ=0"
	}
	if s.Lambda1 {
		out += " λ=1"
	}
	if s.ConstantK {
		out += " const-k"
	}
	if s.Constraints {
		out += " +Σ"
	}
	return out
}
