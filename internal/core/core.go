// Package core defines the shared problem-instance types of the paper's
// Section 4: the three analysis problems QRD (query result diversification),
// DRP (diversity ranking) and RDC (result diversity counting), and the
// Instance structure that bundles their common input — a database D, a query
// Q in some language LQ, an objective function F built from δrel, δdis and λ,
// the set size k, the bound B or rank r, and optionally a set Σ of
// compatibility constraints (Section 9).
package core

import (
	"context"
	"fmt"

	"repro/internal/compat"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/query/eval"
	"repro/internal/relation"
)

// Problem identifies one of the paper's three diversification problems.
type Problem int

// The three problems of Section 4.1.
const (
	QRD Problem = iota // does a valid set exist? (decision)
	DRP                // is rank(U) <= r? (decision)
	RDC                // how many valid sets are there? (counting)
)

// String returns the paper's abbreviation.
func (p Problem) String() string {
	switch p {
	case QRD:
		return "QRD"
	case DRP:
		return "DRP"
	case RDC:
		return "RDC"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Instance is a problem instance shared by QRD, DRP and RDC.
type Instance struct {
	Query *query.Query
	DB    *relation.Database
	Obj   *objective.Objective
	K     int // candidate-set size k >= 1

	// B is the objective bound for QRD and RDC (F(U) >= B is "valid").
	B float64
	// R is the rank threshold for DRP (is rank(U) <= R?).
	R int
	// U is the candidate set whose rank DRP assesses.
	U []relation.Tuple

	// Sigma optionally holds compatibility constraints of Cm; nil means
	// the unconstrained problems of Sections 5-8.
	Sigma *compat.Set

	answers     []relation.Tuple // memoized Q(D)
	haveAnswers bool             // distinguishes an empty memo from no memo
}

// Answers computes (and memoizes) the answer set Q(D) in a deterministic
// order. Solvers that must avoid materializing Q(D) (the paper's
// early-termination motivation) use eval.Member directly instead.
func (in *Instance) Answers() []relation.Tuple {
	if !in.haveAnswers {
		res := eval.Evaluate(in.Query, in.DB)
		in.answers = res.Sorted()
		in.haveAnswers = true
	}
	return in.answers
}

// AnswersContext is Answers under a cancellation context: the (possibly
// exponential, for FO queries) evaluation of Q(D) is interruptible, and the
// memo is only filled by a completed evaluation.
func (in *Instance) AnswersContext(ctx context.Context) ([]relation.Tuple, error) {
	if in.haveAnswers {
		return in.answers, nil
	}
	res, err := eval.EvaluateContext(ctx, in.Query, in.DB)
	if err != nil {
		return nil, err
	}
	in.answers = res.Sorted()
	in.haveAnswers = true
	return in.answers, nil
}

// SetAnswers overrides the memoized answer set; used by identity-query
// instances where Q(D) = D is available without evaluation, and by tests.
// A nil slice is a valid (empty) answer set, not an unset memo; use
// ResetAnswers to force re-evaluation.
func (in *Instance) SetAnswers(ts []relation.Tuple) {
	in.answers = ts
	in.haveAnswers = true
}

// ResetAnswers discards the memoized answer set so the next Answers call
// re-evaluates the query; used by benchmarks that measure evaluation cost.
func (in *Instance) ResetAnswers() {
	in.answers = nil
	in.haveAnswers = false
}

// ResultSchema is the schema RQ of the query result: one attribute per head
// variable.
func (in *Instance) ResultSchema() relation.Schema {
	return relation.NewSchema(in.Query.Name, in.Query.Head...)
}

// Eval scores a candidate set under the instance's objective, supplying the
// answer space that Fmono needs.
func (in *Instance) Eval(u []relation.Tuple) float64 {
	return in.Obj.Eval(u, in.Answers())
}

// SatisfiesConstraints reports U ⊨ Σ (trivially true without constraints).
func (in *Instance) SatisfiesConstraints(u []relation.Tuple) bool {
	if in.Sigma == nil {
		return true
	}
	return in.Sigma.Satisfies(u, in.ResultSchema())
}

// IsCandidate reports whether u is a candidate set for (Q, D, k) — and for
// (Q, D, Σ, k) when constraints are present: u ⊆ Q(D), |u| = k, u ⊨ Σ.
// Membership is checked against the memoized answer set.
func (in *Instance) IsCandidate(u []relation.Tuple) bool {
	if len(u) != in.K {
		return false
	}
	seen := make(map[string]bool, len(u))
	for _, t := range u {
		k := t.Key()
		if seen[k] {
			return false // not a set
		}
		seen[k] = true
	}
	idx := make(map[string]bool, len(in.Answers()))
	for _, t := range in.Answers() {
		idx[t.Key()] = true
	}
	for _, t := range u {
		if !idx[t.Key()] {
			return false
		}
	}
	return in.SatisfiesConstraints(u)
}

// IsValid reports whether u is a valid set for (Q, D, k, F, B): a candidate
// set with F(u) >= B.
func (in *Instance) IsValid(u []relation.Tuple) bool {
	return in.IsCandidate(u) && in.Eval(u) >= in.B
}

// Language classifies the instance's query.
func (in *Instance) Language() query.Language { return in.Query.Classify() }

// Setting describes a cell of the paper's complexity tables: which problem,
// which language, which objective, and which special-case restrictions
// apply. The bench harness uses it to label experiments and to look up the
// proved bound.
type Setting struct {
	Problem     Problem
	Language    query.Language
	Objective   objective.Kind
	Data        bool // data complexity (fixed query) vs combined
	Lambda0     bool // λ = 0: relevance only (Section 8)
	Lambda1     bool // λ = 1: diversity only (Section 8)
	ConstantK   bool // k is a predefined constant (Section 8)
	Constraints bool // compatibility constraints present (Section 9)
}

// String renders the setting compactly, e.g.
// "QRD(CQ, FMS) combined λ=1 +Σ".
func (s Setting) String() string {
	out := fmt.Sprintf("%s(%s, %s)", s.Problem, s.Language, s.Objective)
	if s.Data {
		out += " data"
	} else {
		out += " combined"
	}
	if s.Lambda0 {
		out += " λ=0"
	}
	if s.Lambda1 {
		out += " λ=1"
	}
	if s.ConstantK {
		out += " const-k"
	}
	if s.Constraints {
		out += " +Σ"
	}
	return out
}
