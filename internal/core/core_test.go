package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/compat"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/value"
)

// pointsInstance builds a small identity-query instance over a unary
// relation of integers with relevance = the value and unit distances.
func pointsInstance(t *testing.T, k int, vals ...int64) *Instance {
	t.Helper()
	r := relation.NewRelation(relation.NewSchema("P", "x"))
	for _, v := range vals {
		r.Insert(relation.Tuple{value.Int(v)})
	}
	db := relation.NewDatabase().Add(r)
	obj := objective.New(objective.MaxSum,
		objective.AttrRelevance(0, 1), objective.HammingDistance(), 0.5)
	return &Instance{
		Query: query.IdentityQueryNamed("P", []string{"x"}),
		DB:    db,
		Obj:   obj,
		K:     k,
	}
}

func TestProblemString(t *testing.T) {
	cases := map[Problem]string{QRD: "QRD", DRP: "DRP", RDC: "RDC", Problem(9): "Problem(9)"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestAnswersMemoization(t *testing.T) {
	in := pointsInstance(t, 2, 3, 1, 2)
	first := in.Answers()
	if len(first) != 3 {
		t.Fatalf("|Q(D)| = %d, want 3", len(first))
	}
	// Answers are deterministic and sorted.
	for i := 1; i < len(first); i++ {
		if first[i-1].Compare(first[i]) >= 0 {
			t.Error("answers not in canonical order")
		}
	}
	// Mutating the database after memoization must not change Answers —
	// the memo pins the snapshot the instance was built over.
	in.DB.Relation("P").Insert(relation.Tuple{value.Int(99)})
	if got := len(in.Answers()); got != 3 {
		t.Errorf("memoized answers changed: %d", got)
	}
	in.ResetAnswers()
	if got := len(in.Answers()); got != 4 {
		t.Errorf("after reset, answers = %d, want 4", got)
	}
	// SetAnswers(nil), by contrast, memoizes emptiness.
	in.SetAnswers(nil)
	if got := len(in.Answers()); got != 0 {
		t.Errorf("after SetAnswers(nil), answers = %d, want 0", got)
	}
}

func TestAnswerIndexMemoization(t *testing.T) {
	in := pointsInstance(t, 2, 1, 2, 3)
	idx := in.AnswerIndex()
	if len(idx) != 3 {
		t.Fatalf("index over %d answers, want 3", len(idx))
	}
	if got := in.AnswerIndex(); len(got) != 3 {
		t.Fatal("second AnswerIndex call broken")
	}
	// Repeated IsCandidate calls must reuse the same map, not rebuild it.
	a := in.Answers()
	for i := 0; i < 3; i++ {
		if !in.IsCandidate([]relation.Tuple{a[0], a[1]}) {
			t.Fatal("candidate rejected")
		}
	}
	// SetAnswers invalidates the index (and the plane memo) so candidacy
	// follows the new answer set.
	outside := relation.Tuple{value.Int(42)}
	in.SetAnswers([]relation.Tuple{a[0], outside})
	if !in.IsCandidate([]relation.Tuple{a[0], outside}) {
		t.Error("index not rebuilt after SetAnswers")
	}
	if in.IsCandidate([]relation.Tuple{a[0], a[1]}) {
		t.Error("stale index: old answer accepted after SetAnswers")
	}
	in.ResetAnswers()
	if !in.IsCandidate([]relation.Tuple{a[0], a[1]}) {
		t.Error("index not rebuilt after ResetAnswers")
	}
}

func TestPlaneMemoizedAndInvalidated(t *testing.T) {
	in := pointsInstance(t, 2, 1, 2, 3)
	p1 := in.Plane()
	if p1 == nil || p1.Len() != 3 {
		t.Fatalf("plane = %v", p1)
	}
	if in.Plane() != p1 {
		t.Error("plane rebuilt although answers did not change")
	}
	in.SetAnswers(in.Answers()[:2])
	p2 := in.Plane()
	if p2 == p1 || p2.Len() != 2 {
		t.Error("plane not invalidated by SetAnswers")
	}
	in.PlaneOff = true
	in.ResetAnswers()
	if in.Plane() != nil {
		t.Error("PlaneOff must disable the plane")
	}
}

func TestIsCandidateSemantics(t *testing.T) {
	in := pointsInstance(t, 2, 1, 2, 3)
	a := in.Answers()
	if !in.IsCandidate([]relation.Tuple{a[0], a[1]}) {
		t.Error("two distinct answers form a candidate set")
	}
	if in.IsCandidate([]relation.Tuple{a[0]}) {
		t.Error("wrong cardinality accepted")
	}
	if in.IsCandidate([]relation.Tuple{a[0], a[0]}) {
		t.Error("multiset accepted as a set")
	}
	outside := relation.Tuple{value.Int(42)}
	if in.IsCandidate([]relation.Tuple{a[0], outside}) {
		t.Error("tuple outside Q(D) accepted")
	}
}

func TestIsValidUsesBound(t *testing.T) {
	in := pointsInstance(t, 2, 1, 2, 3)
	a := in.Answers()
	u := []relation.Tuple{a[1], a[2]} // values 2 and 3
	v := in.Eval(u)
	in.B = v
	if !in.IsValid(u) {
		t.Error("set at the bound must be valid (F >= B)")
	}
	in.B = v + 0.001
	if in.IsValid(u) {
		t.Error("set below the bound accepted")
	}
}

func TestConstraintsGateCandidacy(t *testing.T) {
	in := pointsInstance(t, 2, 1, 2, 3)
	set := compat.NewSet(2)
	set.MustAdd(compat.MustParse(`exists s (s.x = 1)`))
	in.Sigma = set
	a := in.Answers()
	with1 := []relation.Tuple{a[0], a[1]} // {1, 2}
	without1 := []relation.Tuple{a[1], a[2]}
	if !in.IsCandidate(with1) {
		t.Error("set containing x=1 satisfies Σ")
	}
	if in.IsCandidate(without1) {
		t.Error("set missing x=1 violates Σ")
	}
	// Nil Sigma means unconstrained.
	in.Sigma = nil
	if !in.SatisfiesConstraints(without1) {
		t.Error("nil Σ should be vacuous")
	}
}

func TestLanguageClassification(t *testing.T) {
	in := pointsInstance(t, 1, 1)
	if got := in.Language(); got != query.Identity {
		t.Errorf("identity instance classified %v", got)
	}
}

func TestResultSchema(t *testing.T) {
	in := pointsInstance(t, 1, 1)
	s := in.ResultSchema()
	if s.Arity() != 1 || s.AttrIndex("x") != 0 {
		t.Errorf("result schema wrong: %v", s)
	}
}

func TestSettingString(t *testing.T) {
	s := Setting{Problem: QRD, Language: query.CQ, Objective: objective.MaxSum}
	if got := s.String(); got != "QRD(CQ, FMS) combined" {
		t.Errorf("Setting.String() = %q", got)
	}
	full := Setting{
		Problem: RDC, Language: query.FO, Objective: objective.Mono,
		Data: true, Lambda0: true, ConstantK: true, Constraints: true,
	}
	for _, want := range []string{"RDC(FO, Fmono)", "data", "λ=0", "const-k", "+Σ"} {
		if got := full.String(); !strings.Contains(got, want) {
			t.Errorf("Setting.String() = %q missing %q", got, want)
		}
	}
	l1 := Setting{Problem: DRP, Language: query.UCQ, Objective: objective.MaxMin, Lambda1: true}
	if got := l1.String(); !strings.Contains(got, "λ=1") {
		t.Errorf("Setting.String() = %q missing λ=1", got)
	}
}

func TestSetAnswersEmptyIsMemo(t *testing.T) {
	// An explicitly set empty (nil) answer set is a memo, not a miss: a
	// nil-slice sentinel here would silently re-evaluate the query — twice
	// per solve on cached-but-empty prepared queries — returning the
	// database rows instead of the cached empty set.
	r := relation.NewRelation(relation.NewSchema("R", "x"))
	r.Insert(relation.Ints(1))
	r.Insert(relation.Ints(2))
	db := relation.NewDatabase().Add(r)
	in := &Instance{Query: query.IdentityQuery("R", 1), DB: db, K: 1}
	in.SetAnswers(nil)
	if got := in.Answers(); len(got) != 0 {
		t.Errorf("Answers() re-evaluated past an empty memo: got %d tuples", len(got))
	}
	got, err := in.AnswersContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("AnswersContext() re-evaluated past an empty memo: got %d tuples", len(got))
	}
}
