package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// SigmaSATToRDC performs the Theorem 7.1 parsimonious reduction from
// #Σ1SAT: given ϕ(X, Y) = ∃X ψ(X, Y), it builds an RDC(CQ, F) instance
// over the Figure 5 gadget database whose valid-set count equals the number
// of Y-assignments satisfying ϕ.
//
// The CQ computes Q(ȳ, z, a): ȳ and z range over the Boolean domain and a
// is the circuit output of ϕ'(ȳ) = ∃x̄ ((ψ(x̄, ȳ) ∨ z) ∧ ¬z), wired from the
// I∨, I∧ and I¬ gate relations. With λ = 0:
//
//	FMS variant: δrel(ȳ,0,1) = 1, δrel(anchor) = 2 for the always-present
//	             anchor (1,...,1, z=1, a=0), else 0; k = 2, B = 3 — valid
//	             sets pair the anchor with a satisfying (ȳ, 0, 1).
//	FMM variant: δrel(ȳ,0,1) = 1 else 0; k = 1, B = 1 — valid sets are the
//	             satisfying singletons.
//
// xVars and yVars partition the variables of ψ.
func SigmaSATToRDC(psi *sat.CNF, xVars, yVars []int, maxMin bool) (*core.Instance, error) {
	inX := make(map[int]bool, len(xVars))
	for _, v := range xVars {
		inX[v] = true
	}
	inY := make(map[int]bool, len(yVars))
	for _, v := range yVars {
		if inX[v] {
			return nil, fmt.Errorf("reduction: variable %d in both X and Y", v)
		}
		inY[v] = true
	}
	for _, v := range psi.Vars() {
		if !inX[v] && !inY[v] {
			return nil, fmt.Errorf("reduction: variable %d not assigned to X or Y", v)
		}
	}

	b := newCircuitBuilder()
	// Domain atoms: every variable of X and Y ranges over {0, 1}.
	for _, v := range xVars {
		b.atom(RelBool, b.varName(v))
	}
	for _, v := range yVars {
		b.atom(RelBool, b.varName(v))
	}
	b.atom(RelBool, "z")
	psiOut, err := b.wireCNF(psi)
	if err != nil {
		return nil, err
	}
	// ϕ' = (ψ ∨ z) ∧ ¬z.
	orZ := b.fresh("pz")
	b.atom(RelOr, orZ, psiOut, "z")
	notZ := b.fresh("nz")
	b.atom(RelNot, "z", notZ)
	b.atom(RelAnd, "a", orZ, notZ)

	head := make([]string, 0, len(yVars)+2)
	for _, v := range yVars {
		head = append(head, b.varName(v))
	}
	head = append(head, "z", "a")
	q := query.MustNew("SigmaQ", head, &query.And{Fs: b.formulas})

	n := len(yVars)
	isSat := func(t relation.Tuple) bool {
		// (ȳ, z=0, a=1)
		return t[n].AsInt() == 0 && t[n+1].AsInt() == 1
	}
	isAnchor := func(t relation.Tuple) bool {
		for i := 0; i < n; i++ {
			if t[i].AsInt() != 1 {
				return false
			}
		}
		return t[n].AsInt() == 1 && t[n+1].AsInt() == 0
	}
	in := &core.Instance{Query: q, DB: GadgetDatabase()}
	if maxMin {
		in.Obj = objective.New(objective.MaxMin, objective.RelevanceFunc(func(t relation.Tuple) float64 {
			if isSat(t) {
				return 1
			}
			return 0
		}), objective.ZeroDistance(), 0)
		in.K, in.B = 1, 1
	} else {
		in.Obj = objective.New(objective.MaxSum, objective.RelevanceFunc(func(t relation.Tuple) float64 {
			switch {
			case isSat(t):
				return 1
			case isAnchor(t):
				return 2
			default:
				return 0
			}
		}), objective.ZeroDistance(), 0)
		in.K, in.B = 2, 3
	}
	return in, nil
}

// CountSigmaSAT is the reference count for SigmaSATToRDC: the number of
// Y-assignments of ψ extendable by an X-assignment to a model.
func CountSigmaSAT(psi *sat.CNF, yVars []int) int64 {
	return psi.CountProjected(yVars)
}

// circuitBuilder accumulates the atoms of a gate-wired CQ body.
type circuitBuilder struct {
	formulas []query.Formula
	next     int
}

func newCircuitBuilder() *circuitBuilder { return &circuitBuilder{} }

func (b *circuitBuilder) varName(v int) string { return fmt.Sprintf("v%d", v) }

func (b *circuitBuilder) fresh(prefix string) string {
	b.next++
	return fmt.Sprintf("%s_%d", prefix, b.next)
}

func (b *circuitBuilder) atom(rel string, vars ...string) {
	args := make([]query.Term, len(vars))
	for i, v := range vars {
		args[i] = query.V(v)
	}
	b.formulas = append(b.formulas, &query.Atom{Rel: rel, Args: args})
}

// literal wires a literal's value: the variable itself, or a RNOT gate
// output for a negated variable (one gate per distinct variable, cached).
func (b *circuitBuilder) literal(lit int, negCache map[int]string) string {
	if lit > 0 {
		return b.varName(lit)
	}
	v := -lit
	if name, ok := negCache[v]; ok {
		return name
	}
	name := b.fresh("n" + b.varName(v))
	b.atom(RelNot, b.varName(v), name)
	negCache[v] = name
	return name
}

// wireCNF wires ψ's clauses through I∨ gates and its conjunction through
// I∧ gates, returning the output variable name.
func (b *circuitBuilder) wireCNF(psi *sat.CNF) (string, error) {
	if len(psi.Clauses) == 0 {
		return "", fmt.Errorf("reduction: empty CNF has no circuit")
	}
	negCache := make(map[int]string)
	clauseOuts := make([]string, len(psi.Clauses))
	for i, c := range psi.Clauses {
		if len(c) == 0 {
			return "", fmt.Errorf("reduction: empty clause")
		}
		cur := b.literal(c[0], negCache)
		for _, lit := range c[1:] {
			next := b.fresh("o")
			b.atom(RelOr, next, cur, b.literal(lit, negCache))
			cur = next
		}
		clauseOuts[i] = cur
	}
	out := clauseOuts[0]
	for _, c := range clauseOuts[1:] {
		next := b.fresh("p")
		b.atom(RelAnd, next, out, c)
		out = next
	}
	return out, nil
}
