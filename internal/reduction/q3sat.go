package reduction

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/relation"
	"repro/internal/sat"
)

// PrefixDistance is the inductive distance function δdis of the Theorem 5.2
// proof (Lemma 5.3), defined over Boolean tuples encoding truth assignments
// of a prenex QBF P1x1...Pmxm ψ:
//
//	δdis(t, s) = 1 iff P_{l+1}x_{l+1}...Pm xm ψ is true under the
//	             assignment encoded by the common prefix t^l of t and s,
//
// computed by the paper's branch recursion (case (i) for l = m−1 via ψ, and
// case (ii) descending through representative branch pairs), NOT by
// evaluating the quantified suffix directly. Lemma 5.3 — that the recursion
// coincides with suffix-QBF truth — is verified by the package tests
// against sat.QBF evaluation. Figure 2 is this function instantiated at
// m = 4.
type PrefixDistance struct {
	qbf  *sat.QBF
	m    int
	memo map[string]bool
}

// NewPrefixDistance builds the distance for the given QBF. The matrix's
// variables 1..m are positional; Prefix must cover all of them.
func NewPrefixDistance(q *sat.QBF) *PrefixDistance {
	return &PrefixDistance{qbf: q, m: len(q.Prefix), memo: make(map[string]bool)}
}

// Dis implements objective.Distance over Boolean tuples of arity m.
func (pd *PrefixDistance) Dis(s, t relation.Tuple) float64 {
	bs, bt := bits(s), bits(t)
	l := commonPrefix(bs, bt)
	if l >= pd.m {
		return 0 // identical tuples
	}
	if pd.delta(bs[:l]) {
		return 1
	}
	return 0
}

// delta is the paper's inductive definition: for a prefix p of length l,
// delta(p) is the value δdis assigns to any pair agreeing on p and
// differing at position l+1.
func (pd *PrefixDistance) delta(p []bool) bool {
	key := prefixKey(p)
	if v, ok := pd.memo[key]; ok {
		return v
	}
	l := len(p)
	var out bool
	if l == pd.m-1 {
		// Case (i): the two tuples are (p,1) and (p,0); consult ψ.
		one := pd.psi(append(append([]bool(nil), p...), true))
		zero := pd.psi(append(append([]bool(nil), p...), false))
		if pd.qbf.Prefix[l] == sat.ForAll {
			out = one && zero
		} else {
			out = one || zero
		}
	} else {
		// Case (ii): descend through the representative branch pairs
		// ((p,1,1,...,1),(p,1,0,...,0)) and ((p,0,1,...,1),(p,0,0,...,0)),
		// whose values are delta(p·1) and delta(p·0).
		one := pd.delta(append(append([]bool(nil), p...), true))
		zero := pd.delta(append(append([]bool(nil), p...), false))
		if pd.qbf.Prefix[l] == sat.ForAll {
			out = one && zero
		} else {
			out = one || zero
		}
	}
	pd.memo[key] = out
	return out
}

// psi evaluates the matrix under a complete assignment.
func (pd *PrefixDistance) psi(assign []bool) bool {
	a := make(sat.Assignment, len(assign))
	for i, b := range assign {
		a[i+1] = b
	}
	return pd.qbf.Matrix.Eval(a)
}

// AllZero reports whether the distance is identically zero — the corner
// case in which the paper's Theorem 6.2 rank argument degenerates (see
// Q3SATToDRPMono).
func (pd *PrefixDistance) AllZero() bool {
	// delta(ε) computes the whole tree; if any memoized entry is true the
	// function is not identically zero. Forcing evaluation of every prefix
	// is exponential in m, fine at gadget scale.
	var walk func(p []bool) bool
	walk = func(p []bool) bool {
		if len(p) >= pd.m {
			return false
		}
		if pd.delta(p) {
			return true
		}
		return walk(append(append([]bool(nil), p...), true)) ||
			walk(append(append([]bool(nil), p...), false))
	}
	return !walk(nil)
}

func prefixKey(p []bool) string {
	b := make([]byte, len(p))
	for i, v := range p {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// Q3SATToQRDMono performs the Theorem 5.2 reduction: given a Q3SAT sentence
// ϕ = P1x1...Pmxm ψ, it builds a QRD(CQ, Fmono) instance — the Boolean
// database I01, the cube query, δrel ≡ 1, the Lemma 5.3 distance, λ = 1,
// k = 1 and B = 1 — such that ϕ is true iff a valid set exists. Note the
// size of D and Q is polynomial in |ϕ| while |Q(D)| = 2^m: the blow-up
// behind the PSPACE combined complexity.
func Q3SATToQRDMono(q *sat.QBF) *core.Instance {
	m := len(q.Prefix)
	db := relation.NewDatabase().Add(BoolRelation())
	return &core.Instance{
		Query: CubeQuery(m),
		DB:    db,
		Obj:   objective.New(objective.Mono, objective.ConstRelevance(1), NewPrefixDistance(q), 1),
		K:     1,
		B:     1,
	}
}

// starDistance is δ*dis of Theorem 6.2: the Lemma 5.3 distance reweighted
// around the all-ones tuple t̂ — pairs (t̂, (1,v...)) halved, pairs
// (t̂, (0,v...)) doubled — so that t̂ tops the Fmono ranking exactly when ϕ
// is true.
type starDistance struct {
	base *PrefixDistance
	m    int
}

func (sd *starDistance) Dis(s, t relation.Tuple) float64 {
	d := sd.base.Dis(s, t)
	if d == 0 {
		return 0
	}
	other, involved := sd.otherOfPair(s, t)
	if !involved {
		return d
	}
	if other[0].AsInt() == 1 {
		return d / 2
	}
	return d * 2
}

// otherOfPair reports whether the pair involves the all-ones tuple and if
// so returns the other tuple.
func (sd *starDistance) otherOfPair(s, t relation.Tuple) (relation.Tuple, bool) {
	if isAllOnes(s) {
		return t, true
	}
	if isAllOnes(t) {
		return s, true
	}
	return nil, false
}

func isAllOnes(t relation.Tuple) bool {
	for _, v := range t {
		if v.AsInt() != 1 {
			return false
		}
	}
	return true
}

// Q3SATToDRPMono performs the Theorem 6.2 reduction: ϕ is true iff
// rank({t̂}) ≤ r = 1 under δ*dis, with t̂ = (1,...,1), k = 1 and λ = 1.
//
// Known corner (errata): when δdis is identically zero yet ϕ is false
// (e.g. an unsatisfiable matrix), every singleton scores 0, so rank(t̂) = 1
// and the reduction's ⇐ direction fails; the paper's proof implicitly
// assumes a level l0 with a positive distance exists. The constructor
// reports this corner via the second return value so callers can account
// for it; the package tests document it explicitly.
func Q3SATToDRPMono(q *sat.QBF) (*core.Instance, bool) {
	m := len(q.Prefix)
	base := NewPrefixDistance(q)
	db := relation.NewDatabase().Add(BoolRelation())
	ones := make([]int64, m)
	for i := range ones {
		ones[i] = 1
	}
	in := &core.Instance{
		Query: CubeQuery(m),
		DB:    db,
		Obj:   objective.New(objective.Mono, objective.ConstRelevance(1), &starDistance{base: base, m: m}, 1),
		K:     1,
		R:     1,
		U:     []relation.Tuple{relation.Ints(ones...)},
	}
	return in, base.AllZero() && !q.Eval()
}

// doubleStarDistance is δ**dis of Theorem 7.2: zero across distinct
// X-blocks; within the block of tX, the Lemma 7.3 distance over the Y
// suffix, reweighted around t̆ = (tX, 1,...,1) — pairs (t̆, (tX,1,v...))
// quartered-to-half, pairs (t̆, (tX,0,v...)) quadrupled.
type doubleStarDistance struct {
	base *PrefixDistance // over the full m+n prefix (X quantifiers unused)
	m    int             // |X|
	n    int             // |Y|
}

func (dd *doubleStarDistance) Dis(s, t relation.Tuple) float64 {
	bs, bt := bits(s), bits(t)
	if commonPrefix(bs, bt) < dd.m {
		return 0 // distinct X-blocks
	}
	d := dd.base.Dis(s, t)
	if d == 0 {
		return 0
	}
	breve, other := dd.breveOf(s, t)
	if breve == nil {
		return d
	}
	if other[dd.m] { // y1 = 1
		return d / 2
	}
	return d * 4
}

// breveOf detects whether one of the pair is its block's t̆ = (tX, 1,...,1),
// returning (that tuple's bits, the other's bits); nil when neither is.
func (dd *doubleStarDistance) breveOf(s, t relation.Tuple) ([]bool, []bool) {
	bs, bt := bits(s), bits(t)
	if allTrue(bs[dd.m:]) {
		return bs, bt
	}
	if allTrue(bt[dd.m:]) {
		return bt, bs
	}
	return nil, nil
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// QBFToRDCMono performs the Theorem 7.2 parsimonious reduction from #QBF:
// given ϕ = ∃X ∀y1 P2y2 ... Pnyn ψ with |X| = m and |Y| = n ≥ 2, the number
// of valid sets of the returned instance equals the number of truth
// assignments of X satisfying ϕ. The instance uses the cube query over
// m+n variables, δrel ≡ 1, δ**dis, λ = 1, k = 1 and
// B = 2^(n+1)/(2^(m+n) − 1).
//
// yPrefix[0] must be ForAll (the problem's first Y quantifier); n = 1 is
// rejected because the paper's counting argument admits ties there.
func QBFToRDCMono(matrix *sat.CNF, m int, yPrefix []sat.Quantifier) (*core.Instance, error) {
	n := len(yPrefix)
	if n < 2 {
		return nil, fmt.Errorf("reduction: QBFToRDCMono requires n >= 2 Y-variables, got %d", n)
	}
	if yPrefix[0] != sat.ForAll {
		return nil, fmt.Errorf("reduction: #QBF instances start with a universal Y-quantifier")
	}
	full := make([]sat.Quantifier, m+n)
	for i := 0; i < m; i++ {
		full[i] = sat.Exists // positional only; never consulted by δ**
	}
	copy(full[m:], yPrefix)
	q := &sat.QBF{Prefix: full, Matrix: matrix}
	base := NewPrefixDistance(q)
	db := relation.NewDatabase().Add(BoolRelation())
	return &core.Instance{
		Query: CubeQuery(m + n),
		DB:    db,
		Obj: objective.New(objective.Mono, objective.ConstRelevance(1),
			&doubleStarDistance{base: base, m: m, n: n}, 1),
		K: 1,
		B: math.Pow(2, float64(n+1)) / (math.Pow(2, float64(m+n)) - 1),
	}, nil
}

// CountQBFFreeModels is the reference count for QBFToRDCMono: the number of
// X-assignments under which ∀y1 P2y2 ... Pnyn ψ holds.
func CountQBFFreeModels(matrix *sat.CNF, m int, yPrefix []sat.Quantifier) int64 {
	full := make([]sat.Quantifier, m+len(yPrefix))
	for i := 0; i < m; i++ {
		full[i] = sat.Exists
	}
	copy(full[m:], yPrefix)
	q := &sat.QBF{Prefix: full, Matrix: matrix}
	return q.CountFreeModels(m)
}

// Figure2QBF returns the running example of Figure 2:
// ϕ = ∃x1 ∀x2 ∃x3 ∀x4 ψ with ψ = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x2 ∨ ¬x3 ∨ x4).
func Figure2QBF() *sat.QBF {
	return &sat.QBF{
		Prefix: []sat.Quantifier{sat.Exists, sat.ForAll, sat.Exists, sat.ForAll},
		Matrix: sat.NewCNF(sat.Clause{1, 2, -3}, sat.Clause{-2, -3, 4}),
	}
}

// Figure2Tuple returns ti (1-based, i in [1,16]) under the figure's column
// encoding: t1 = (1,1,1,1), t2 = (1,1,1,0), ..., t16 = (0,0,0,0) — x1 is
// the most significant bit and 1 sorts before 0.
func Figure2Tuple(i int) relation.Tuple {
	code := 16 - i // t16 = 0000, t1 = 1111
	xs := make([]int64, 4)
	for b := 0; b < 4; b++ {
		xs[b] = int64((code >> (3 - b)) & 1)
	}
	return relation.Ints(xs...)
}
