// Package reduction implements the paper's lower-bound proofs as executable
// instance constructions. Each theorem's reduction becomes a function from
// the source problem (a 3SAT/Q3SAT/#SAT/#QBF/#SSP instance or an
// FO-membership triple) to a diversification instance, with the proof's
// "if and only if" checked by the package tests on bounded inputs:
//
//	Thm 5.1  3SAT          → QRD(CQ, FMS) and QRD(CQ, FMM)      threesat.go
//	Thm 5.1  FO-membership → QRD(FO, FMS) and QRD(FO, FMM)      membership.go
//	Thm 5.2  Q3SAT         → QRD(CQ, Fmono)  (Lemma 5.3)        q3sat.go
//	Thm 6.1  co-3SAT       → DRP(CQ, FMS) and DRP(CQ, FMM)      threesat.go
//	Thm 6.1  FO-membership → DRP(FO, FMS/FMM)                   membership.go
//	Thm 6.2  Q3SAT         → DRP(CQ, Fmono)  (Lemma 6.3)        q3sat.go
//	Thm 7.1  #Σ1SAT        → RDC(CQ, FMS/FMM)                   sigma1.go
//	Thm 7.2  #QBF          → RDC(CQ, Fmono)  (Lemma 7.3)        q3sat.go
//	Thm 7.4  #SAT          → RDC(CQ, FMS/FMM) (data)            threesat.go
//	Lem 7.6  #SSP          → #SSPk                              subsetsum.go
//	Thm 7.5  #SSPk         → RDC(CQ, Fmono) (Turing)            subsetsum.go
//	Thm 9.3  3SAT          → QRD(identity, Fmono, Σ) (data)     constraints.go
//
// This file holds the shared Boolean gadgets of Figure 5 — the relations
// I01, I∨, I∧ and I¬ that encode the Boolean domain and the logical
// connectives — and the truth-assignment cube query of Theorem 5.2.
package reduction

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// Gadget relation names, kept distinctive to avoid clashing with user
// relations when a reduction extends an existing database.
const (
	RelBool = "R01"  // R01(X):       the Boolean domain {0, 1}
	RelOr   = "ROR"  // ROR(B,A1,A2): B = A1 ∨ A2
	RelAnd  = "RAND" // RAND(B,A1,A2): B = A1 ∧ A2
	RelNot  = "RNOT" // RNOT(A,NA):   NA = ¬A
)

// BoolRelation builds I01 = {(0), (1)} of Figure 5.
func BoolRelation() *relation.Relation {
	r := relation.NewRelation(relation.NewSchema(RelBool, "X"))
	r.InsertAll(relation.Ints(0), relation.Ints(1))
	return r
}

// OrRelation builds I∨ of Figure 5: all (b, a1, a2) with b = a1 ∨ a2.
func OrRelation() *relation.Relation {
	r := relation.NewRelation(relation.NewSchema(RelOr, "B", "A1", "A2"))
	for a1 := int64(0); a1 <= 1; a1++ {
		for a2 := int64(0); a2 <= 1; a2++ {
			b := a1 | a2
			r.Insert(relation.Ints(b, a1, a2))
		}
	}
	return r
}

// AndRelation builds I∧ of Figure 5: all (b, a1, a2) with b = a1 ∧ a2.
func AndRelation() *relation.Relation {
	r := relation.NewRelation(relation.NewSchema(RelAnd, "B", "A1", "A2"))
	for a1 := int64(0); a1 <= 1; a1++ {
		for a2 := int64(0); a2 <= 1; a2++ {
			b := a1 & a2
			r.Insert(relation.Ints(b, a1, a2))
		}
	}
	return r
}

// NotRelation builds I¬ of Figure 5: {(0,1), (1,0)}.
func NotRelation() *relation.Relation {
	r := relation.NewRelation(relation.NewSchema(RelNot, "A", "NA"))
	r.InsertAll(relation.Ints(0, 1), relation.Ints(1, 0))
	return r
}

// GadgetDatabase bundles the four Figure 5 relations into one database.
func GadgetDatabase() *relation.Database {
	return relation.NewDatabase().
		Add(BoolRelation()).
		Add(OrRelation()).
		Add(AndRelation()).
		Add(NotRelation())
}

// CubeQuery builds the CQ of Theorem 5.2,
// Q(x1..xm) = R01(x1) ∧ ... ∧ R01(xm), which generates all 2^m truth
// assignments of m Boolean variables.
func CubeQuery(m int) *query.Query {
	head := make([]string, m)
	fs := make([]query.Formula, m)
	for i := 0; i < m; i++ {
		head[i] = fmt.Sprintf("x%d", i+1)
		fs[i] = &query.Atom{Rel: RelBool, Args: []query.Term{query.V(head[i])}}
	}
	var body query.Formula = &query.And{Fs: fs}
	if m == 1 {
		body = fs[0]
	}
	return query.MustNew("Cube", head, body)
}

// bits decodes a Boolean tuple into a []bool assignment (1 = true).
func bits(t relation.Tuple) []bool {
	out := make([]bool, len(t))
	for i, v := range t {
		out[i] = v.AsInt() != 0
	}
	return out
}

// boolTuple encodes a []bool assignment as a Boolean tuple.
func boolTuple(bs []bool) relation.Tuple {
	t := make(relation.Tuple, len(bs))
	for i, b := range bs {
		if b {
			t[i] = relation.Ints(1)[0]
		} else {
			t[i] = relation.Ints(0)[0]
		}
	}
	return t
}

// commonPrefix returns the length of the longest common prefix of two
// equal-arity Boolean tuples.
func commonPrefix(a, b []bool) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
