package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/value"
)

// extendWithBool clones db and adds the Boolean gadget relation I01,
// rejecting databases that already define it.
func extendWithBool(db *relation.Database) (*relation.Database, error) {
	if db.Relation(RelBool) != nil {
		return nil, fmt.Errorf("reduction: database already defines %s", RelBool)
	}
	out := db.Clone()
	out.Add(BoolRelation())
	return out, nil
}

// MembershipToQRDFO performs the Theorem 5.1 FO-case reduction: given an
// instance (Q, D, s) of the FO membership problem, it builds a
// QRD(FO, FMS) or QRD(FO, FMM) instance over D' = (D, I01) and
// Q'(x̄, c) = Q(x̄) ∧ R01(c), with δrel marking (s, 1), δdis ≡ 0 and λ = 0,
// such that s ∈ Q(D) iff a valid set exists. maxMin selects the FMM
// variant (k = 1); otherwise FMS with k = 2.
func MembershipToQRDFO(q *query.Query, db *relation.Database, s relation.Tuple, maxMin bool) (*core.Instance, error) {
	if len(s) != q.Arity() {
		return nil, fmt.Errorf("reduction: tuple arity %d does not match query arity %d", len(s), q.Arity())
	}
	db2, err := extendWithBool(db)
	if err != nil {
		return nil, err
	}
	cVar := freshVar("c", q.Head)
	head := append(append([]string(nil), q.Head...), cVar)
	body := &query.And{Fs: []query.Formula{
		q.Body,
		&query.Atom{Rel: RelBool, Args: []query.Term{query.V(cVar)}},
	}}
	qPrime := query.MustNew(q.Name+"_prime", head, body)

	marked := append(s.Clone(), value.Int(1))
	rel := (&objective.TableRelevance{Default: 0}).Set(marked, 1)
	kind, k := objective.MaxSum, 2
	if maxMin {
		kind, k = objective.MaxMin, 1
	}
	return &core.Instance{
		Query: qPrime,
		DB:    db2,
		Obj:   objective.New(kind, rel, objective.ZeroDistance(), 0),
		K:     k,
		B:     1,
	}, nil
}

// MembershipToDRPFO performs the Theorem 6.1 FO-case reduction from the
// complement of the membership problem: over D' = (D, I01) and
//
//	Q'(x̄, z, c) = (Q(x̄) ∨ (R01(z) ∧ z = 1)) ∧ R01(c)
//
// with δrel scoring (s,0,·) rows 3, (s,1,·) rows 2 and everything else 1,
// s ∉ Q(D) iff rank(U) ≤ r = 1, where U = {(s,1,1),(s,1,0)} for FMS
// (k = 2) and U = {(s,1,1)} for FMM (k = 1).
//
// The construction requires every value of s to occur in the active domain
// of D' ∪ Q (otherwise (s,1,·) ∉ Q'(D') under active-domain semantics and U
// would not be a candidate set); an error is returned if it does not.
func MembershipToDRPFO(q *query.Query, db *relation.Database, s relation.Tuple, maxMin bool) (*core.Instance, error) {
	if len(s) != q.Arity() {
		return nil, fmt.Errorf("reduction: tuple arity %d does not match query arity %d", len(s), q.Arity())
	}
	db2, err := extendWithBool(db)
	if err != nil {
		return nil, err
	}
	adom := map[string]bool{}
	for _, v := range db2.ActiveDomain() {
		adom[v.Key()] = true
	}
	for _, v := range q.Constants() {
		adom[v.Key()] = true
	}
	for _, v := range s {
		if !adom[v.Key()] {
			return nil, fmt.Errorf("reduction: value %v of s is outside the active domain", v)
		}
	}
	zVar := freshVar("z", q.Head)
	cVar := freshVar("c", append(q.Head, zVar))
	head := append(append([]string(nil), q.Head...), zVar, cVar)
	body := &query.And{Fs: []query.Formula{
		&query.Or{Fs: []query.Formula{
			q.Body,
			&query.And{Fs: []query.Formula{
				&query.Atom{Rel: RelBool, Args: []query.Term{query.V(zVar)}},
				&query.Cmp{Op: query.EQ, L: query.V(zVar), R: query.CInt(1)},
			}},
		}},
		&query.Atom{Rel: RelBool, Args: []query.Term{query.V(cVar)}},
	}}
	qPrime := query.MustNew(q.Name+"_prime", head, body)

	rel := &objective.TableRelevance{Default: 1}
	withZC := func(z, c int64) relation.Tuple {
		return append(s.Clone(), value.Int(z), value.Int(c))
	}
	rel.Set(withZC(0, 1), 3).Set(withZC(0, 0), 3)
	rel.Set(withZC(1, 1), 2).Set(withZC(1, 0), 2)

	kind, k := objective.MaxSum, 2
	u := []relation.Tuple{withZC(1, 1), withZC(1, 0)}
	if maxMin {
		kind, k = objective.MaxMin, 1
		u = u[:1]
	}
	return &core.Instance{
		Query: qPrime,
		DB:    db2,
		Obj:   objective.New(kind, rel, objective.ZeroDistance(), 0),
		K:     k,
		R:     1,
		U:     u,
	}, nil
}

// freshVar returns base with a suffix avoiding collisions with taken names.
func freshVar(base string, taken []string) string {
	used := make(map[string]bool, len(taken))
	for _, t := range taken {
		used[t] = true
	}
	name := base
	for i := 0; used[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return name
}
