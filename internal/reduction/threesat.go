package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/value"
)

// clauseRelSchema is RC(cid, L1, V1, L2, V2, L3, V3) from the Theorem 5.1
// proof: one row per clause per satisfying assignment of its three
// variables.
var clauseRelSchema = relation.NewSchema("RC", "cid", "L1", "V1", "L2", "V2", "L3", "V3")

// clauseVars returns the (distinct, ordered) variables of a ternary clause,
// padded by repeating the last variable if the clause mentions fewer than
// three distinct ones.
func clauseVars(c sat.Clause) [3]int {
	var vars [3]int
	seen := map[int]bool{}
	n := 0
	for _, lit := range c {
		v := lit
		if v < 0 {
			v = -v
		}
		if !seen[v] {
			seen[v] = true
			vars[n] = v
			n++
			if n == 3 {
				break
			}
		}
	}
	for ; n < 3; n++ {
		vars[n] = vars[n-1]
	}
	return vars
}

// clauseSatisfied evaluates a clause under an assignment of its variables.
func clauseSatisfied(c sat.Clause, a sat.Assignment) bool {
	for _, lit := range c {
		v, pos := lit, true
		if v < 0 {
			v, pos = -v, false
		}
		if a[v] == pos {
			return true
		}
	}
	return false
}

// clauseRelation builds the Theorem 5.1 instance relation IC for formula f:
// for every clause Ci and every assignment µ of its variables that makes Ci
// true, the tuple (i, x, µ(x), y, µ(y), z, µ(z)). At most 8 tuples per
// clause (7 satisfying out of 8 for a real ternary clause).
func clauseRelation(f *sat.CNF) *relation.Relation {
	r := relation.NewRelation(clauseRelSchema)
	for i, c := range f.Clauses {
		vars := clauseVars(c)
		for mask := 0; mask < 8; mask++ {
			a := sat.Assignment{}
			for b, v := range vars {
				a[v] = mask&(1<<b) != 0
			}
			if !clauseSatisfied(c, a) {
				continue
			}
			t := relation.Tuple{
				value.Int(int64(i + 1)),
				value.Int(int64(vars[0])), boolVal(a[vars[0]]),
				value.Int(int64(vars[1])), boolVal(a[vars[1]]),
				value.Int(int64(vars[2])), boolVal(a[vars[2]]),
			}
			r.Insert(t)
		}
	}
	return r
}

func boolVal(b bool) value.Value {
	if b {
		return value.Int(1)
	}
	return value.Int(0)
}

// clauseTupleAssignment extracts the (variable, value) pairs of a clause
// tuple as a partial assignment.
func clauseTupleAssignment(t relation.Tuple) map[int]bool {
	a := make(map[int]bool, 3)
	for i := 1; i+1 < len(t); i += 2 {
		a[int(t[i].AsInt())] = t[i+1].AsInt() != 0
	}
	return a
}

// clauseConsistentDistance is δdis of Theorem 5.1: distance 1 between tuples
// of distinct clauses that agree on every shared variable, 0 otherwise.
func clauseConsistentDistance() objective.Distance {
	return objective.DistanceFunc(func(s, t relation.Tuple) float64 {
		if s.Equal(t) || value.Equal(s[0], t[0]) {
			return 0
		}
		as, at := clauseTupleAssignment(s), clauseTupleAssignment(t)
		for v, vs := range as {
			if vt, ok := at[v]; ok && vt != vs {
				return 0
			}
		}
		return 1
	})
}

// ThreeSATToQRDMaxSum performs the Theorem 5.1 reduction for FMS: the
// returned instance has a valid set iff f is satisfiable. The instance uses
// an identity query, λ = 1, k = l and B = l(l−1) with l = |clauses|.
func ThreeSATToQRDMaxSum(f *sat.CNF) *core.Instance {
	l := len(f.Clauses)
	db := relation.NewDatabase().Add(clauseRelation(f))
	return &core.Instance{
		Query: query.IdentityQueryNamed("RC", clauseRelSchema.Attrs),
		DB:    db,
		Obj:   objective.New(objective.MaxSum, objective.ConstRelevance(1), clauseConsistentDistance(), 1),
		K:     l,
		B:     float64(l * (l - 1)),
	}
}

// ThreeSATToQRDMaxMin performs the Theorem 5.1 reduction for FMM: valid set
// exists iff f is satisfiable, with B = 1 (every pair in the set must be a
// consistent cross-clause pair).
func ThreeSATToQRDMaxMin(f *sat.CNF) *core.Instance {
	in := ThreeSATToQRDMaxSum(f)
	in.Obj = objective.New(objective.MaxMin, objective.ConstRelevance(1), clauseConsistentDistance(), 1)
	in.B = 1
	return in
}

// SATToRDCCount performs the Theorem 7.4 data-complexity reduction: the
// number of valid sets of the returned instance equals the number of
// satisfying assignments of f over the variables that occur in it
// (a parsimonious reduction from #SAT). Pass maxMin to use the FMM variant.
func SATToRDCCount(f *sat.CNF, maxMin bool) *core.Instance {
	if maxMin {
		return ThreeSATToQRDMaxMin(f)
	}
	return ThreeSATToQRDMaxSum(f)
}

// --- Theorem 6.1: complement of 3SAT → DRP(CQ, FMS/FMM) ---

// drpSchema is RC'(cid, L1, V1, L2, V2, L3, V3, Z, VZ, A) from the
// Theorem 6.1 proof: clause rows of ϕ' = ∧(Ci ∨ z) ∧ ¬z carry the fresh
// variable z's value and a satisfaction flag A.
var drpSchema = relation.NewSchema("RCp",
	"cid", "L1", "V1", "L2", "V2", "L3", "V3", "Z", "VZ", "A")

// zVarName is the fresh-variable marker stored in the Z column, and eVals
// are the distinct constants e1..e3/f1..f3 of the z̄ rows.
const zVarName int64 = -1

// drpRelation builds the instance relation for ϕ' = ∧ (Ci ∨ z) ∧ ¬z: for
// each clause C'i = Ci ∨ z and every assignment of its three variables and
// z, one row flagged A=1 iff the assignment satisfies C'i; plus the two
// special rows for the final clause ¬z.
func drpRelation(f *sat.CNF) *relation.Relation {
	r := relation.NewRelation(drpSchema)
	l := len(f.Clauses)
	for i, c := range f.Clauses {
		vars := clauseVars(c)
		for mask := 0; mask < 16; mask++ {
			a := sat.Assignment{}
			for b, v := range vars {
				a[v] = mask&(1<<b) != 0
			}
			zVal := mask&8 != 0
			sat1 := clauseSatisfied(c, a) || zVal
			t := relation.Tuple{
				value.Int(int64(i + 1)),
				value.Int(int64(vars[0])), boolVal(a[vars[0]]),
				value.Int(int64(vars[1])), boolVal(a[vars[1]]),
				value.Int(int64(vars[2])), boolVal(a[vars[2]]),
				value.Int(zVarName), boolVal(zVal),
				boolVal(sat1),
			}
			r.Insert(t)
		}
	}
	// Final clause z̄: rows (l+1, e1, f1, e2, f2, e3, f3, z, 1, 0) and
	// (l+1, ..., z, 0, 1): distinct constants ei, fi outside X ∪ {z, 0, 1}.
	e := func(i int64) value.Value { return value.Int(-100 - i) }
	r.Insert(relation.Tuple{
		value.Int(int64(l + 1)), e(1), e(11), e(2), e(12), e(3), e(13),
		value.Int(zVarName), boolVal(true), boolVal(false),
	})
	r.Insert(relation.Tuple{
		value.Int(int64(l + 1)), e(1), e(11), e(2), e(12), e(3), e(13),
		value.Int(zVarName), boolVal(false), boolVal(true),
	})
	return r
}

// drpTupleAssignment reads the variable/value pairs of a ϕ' row, including
// z (keyed by zVarName) but excluding the ei marker constants.
func drpTupleAssignment(t relation.Tuple) map[int64]bool {
	a := make(map[int64]bool, 4)
	for i := 1; i+1 < 9; i += 2 {
		v := t[i].AsInt()
		if v <= -100 {
			continue // marker constant, not a variable
		}
		a[v] = t[i+1].AsInt() != 0
	}
	a[zVarName] = t[8].AsInt() != 0
	return a
}

// drpDistance is δdis of Theorem 6.1: 1 between rows of distinct clauses
// that are variable-consistent (including z) and both flagged A=1.
func drpDistance() objective.Distance {
	return objective.DistanceFunc(func(s, t relation.Tuple) float64 {
		if s.Equal(t) || value.Equal(s[0], t[0]) {
			return 0
		}
		if s[9].AsInt() != 1 || t[9].AsInt() != 1 {
			return 0
		}
		as, at := drpTupleAssignment(s), drpTupleAssignment(t)
		for v, vs := range as {
			if vt, ok := at[v]; ok && vt != vs {
				return 0
			}
		}
		return 1
	})
}

// drpAssessedSet builds the set U of the Theorem 6.1 proof: one row per
// clause of ϕ' with every variable (and z) set to 1.
func drpAssessedSet(f *sat.CNF, rel *relation.Relation) ([]relation.Tuple, error) {
	l := len(f.Clauses)
	var u []relation.Tuple
	for i, c := range f.Clauses {
		vars := clauseVars(c)
		want := relation.Tuple{
			value.Int(int64(i + 1)),
			value.Int(int64(vars[0])), boolVal(true),
			value.Int(int64(vars[1])), boolVal(true),
			value.Int(int64(vars[2])), boolVal(true),
			value.Int(zVarName), boolVal(true),
			boolVal(true), // all-true with z=1 always satisfies Ci ∨ z
		}
		if !rel.Contains(want) {
			return nil, fmt.Errorf("reduction: expected row %v missing", want)
		}
		u = append(u, want)
	}
	e := func(i int64) value.Value { return value.Int(-100 - i) }
	zRow := relation.Tuple{
		value.Int(int64(l + 1)), e(1), e(11), e(2), e(12), e(3), e(13),
		value.Int(zVarName), boolVal(true), boolVal(false),
	}
	if !rel.Contains(zRow) {
		return nil, fmt.Errorf("reduction: z̄ row missing")
	}
	return append(u, zRow), nil
}

// refVarBase marks the synthetic variables of reference rows; real variable
// ids are positive, z is -1, marker constants are ≤ -100, reference
// variables are ≤ -200.
const refVarBase int64 = -200

// CoThreeSATToDRPMaxSum reduces the complement of 3SAT to DRP(CQ, FMS):
// in the returned instance, rank(U) ≤ r = 1 holds iff f is NOT satisfiable.
// f must have at least two clauses.
//
// Note on fidelity: the paper's Theorem 6.1 text compares U against
// arbitrary candidate sets and asserts every set has at most l satisfied
// consistent rows when ϕ is unsatisfiable; that step overlooks sets whose
// consistency graph is dense but not complete (rows of pairwise-disjoint
// clauses with clashing assignments elsewhere can out-score U). We
// therefore use a repaired construction with the same skeleton: D gains one
// "reference" row per clause forming a clique of pairwise distance 1 − ε
// with ε = 1/l², and U is that reference clique. A satisfying assignment
// yields a real clique of pairwise distance 1, beating U; when ϕ is
// unsatisfiable every real or mixed set loses at least one full pair and
// stays strictly below FMS(U). The theorem's statement (coNP-hardness via
// a fixed identity query, λ = 1, r = 1) is preserved.
func CoThreeSATToDRPMaxSum(f *sat.CNF) (*core.Instance, error) {
	l := len(f.Clauses)
	if l < 2 {
		return nil, fmt.Errorf("reduction: CoThreeSATToDRPMaxSum needs at least 2 clauses, got %d", l)
	}
	rel := clauseRelation(f)
	var u []relation.Tuple
	for i := 1; i <= l; i++ {
		w := refVarBase - int64(i)
		ref := relation.Tuple{
			value.Int(int64(i)),
			value.Int(w), boolVal(true),
			value.Int(w), boolVal(true),
			value.Int(w), boolVal(true),
		}
		rel.Insert(ref)
		u = append(u, ref)
	}
	eps := 1 / float64(l*l)
	base := clauseConsistentDistance()
	isRef := func(t relation.Tuple) bool { return t[1].AsInt() <= refVarBase }
	dis := objective.DistanceFunc(func(s, t relation.Tuple) float64 {
		rs, rt := isRef(s), isRef(t)
		switch {
		case rs && rt:
			if value.Equal(s[0], t[0]) {
				return 0
			}
			return 1 - eps
		case rs != rt:
			return 0
		default:
			return base.Dis(s, t)
		}
	})
	db := relation.NewDatabase().Add(rel)
	return &core.Instance{
		Query: query.IdentityQueryNamed("RC", clauseRelSchema.Attrs),
		DB:    db,
		Obj:   objective.New(objective.MaxSum, objective.ConstRelevance(1), dis, 1),
		K:     l,
		R:     1,
		U:     u,
	}, nil
}

// CoThreeSATToDRPMaxMin performs the paper's Theorem 6.1 reduction for FMM,
// via ϕ' = ∧ (Ci ∨ z) ∧ ¬z: the instance relation carries every assignment
// row of every extended clause with a satisfaction flag A, U is the all-true
// row per clause plus the z̄ row, and δ'dis scores 2 on consistent satisfied
// pairs outside U, 1 on pairs inside U, 0 otherwise. Since FMM takes the
// minimum pairwise distance, a set scores 2 only if it is a full clique of
// consistent satisfied rows outside U — which encodes a satisfying
// assignment of ϕ with z = 0. Hence rank(U) ≤ r = 1 iff f is NOT
// satisfiable.
func CoThreeSATToDRPMaxMin(f *sat.CNF) (*core.Instance, error) {
	rel := drpRelation(f)
	db := relation.NewDatabase().Add(rel)
	u, err := drpAssessedSet(f, rel)
	if err != nil {
		return nil, err
	}
	inU := make(map[string]bool, len(u))
	for _, t := range u {
		inU[t.Key()] = true
	}
	base := drpDistance()
	dis := objective.DistanceFunc(func(s, t relation.Tuple) float64 {
		if s.Equal(t) {
			return 0
		}
		su, tu := inU[s.Key()], inU[t.Key()]
		if su && tu {
			return 1
		}
		if !su && !tu && base.Dis(s, t) == 1 {
			return 2
		}
		return 0
	})
	return &core.Instance{
		Query: query.IdentityQueryNamed("RCp", drpSchema.Attrs),
		DB:    db,
		Obj:   objective.New(objective.MaxMin, objective.ConstRelevance(1), dis, 1),
		K:     len(f.Clauses) + 1,
		R:     1,
		U:     u,
	}, nil
}
