package reduction

import (
	"fmt"
	"math/big"

	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/solver"
	"repro/internal/subset"
	"repro/internal/value"
)

// SSPInstance is an instance of the #subset-sum problem #SSP: count subsets
// T ⊆ W with Σ_{w∈T} π(w) = D.
type SSPInstance struct {
	Weights []int64 // π(w1..wn), non-negative
	D       int64
}

// SSPkInstance is an instance of #SSPk (Lemma 7.6): count subsets of
// exactly L elements summing to D. Weights are big integers because the
// Lemma 7.6 construction produces n+m digit numbers.
type SSPkInstance struct {
	Weights []*big.Int
	L       int
	D       *big.Int
}

// SSPToSSPk performs the parsimonious reduction of Lemma 7.6: each element
// wi becomes two elements (wi,1) and (wi,0) whose weights are n+m digit
// decimals — an indicator digit for i in the high block, and π(wi) or 0 in
// the low block — with the target forcing exactly one of each pair. The
// number of L-subsets of the output summing to D' equals the number of
// subsets of the input summing to D.
func SSPToSSPk(in SSPInstance) SSPkInstance {
	n := len(in.Weights)
	total := int64(0)
	for _, w := range in.Weights {
		total += w
	}
	// m = number of decimal digits of Σπ.
	m := 1
	for t := total; t >= 10; t /= 10 {
		m++
	}
	pow10m := new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(m)), nil)
	out := SSPkInstance{L: n, D: new(big.Int)}
	dPrime := new(big.Int)
	for i := 0; i < n; i++ {
		// Indicator value 10^(m + (n-1-i)) for element i.
		ind := new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(m+n-1-i)), nil)
		withW := new(big.Int).Add(ind, big.NewInt(in.Weights[i]))
		without := new(big.Int).Set(ind)
		out.Weights = append(out.Weights, withW, without)
		dPrime.Add(dPrime, ind)
	}
	dPrime.Add(dPrime, big.NewInt(in.D))
	out.D = dPrime
	_ = pow10m
	return out
}

// CountSSP counts subsets of any size summing exactly to D, by brute force
// (the reference oracle for Lemma 7.6 tests).
func CountSSP(in SSPInstance) *big.Int {
	n := len(in.Weights)
	count := new(big.Int)
	for mask := 0; mask < 1<<n; mask++ {
		sum := int64(0)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sum += in.Weights[i]
			}
		}
		if sum == in.D {
			count.Add(count, big.NewInt(1))
		}
	}
	return count
}

// CountSSPk counts L-subsets summing exactly to D, by brute force.
func CountSSPk(in SSPkInstance) *big.Int {
	count := new(big.Int)
	sum := new(big.Int)
	subset.ForEach(len(in.Weights), in.L, func(idx []int) bool {
		sum.SetInt64(0)
		for _, i := range idx {
			sum.Add(sum, in.Weights[i])
		}
		if sum.Cmp(in.D) == 0 {
			count.Add(count, big.NewInt(1))
		}
		return true
	})
	return count
}

// SSPkToRDCMono builds the Theorem 7.5 diversification instance for an
// #SSPk instance: an identity query over IW = {(i, wi)}, δrel projecting
// the weight, δdis ≡ 0, λ = 0, k = L and B = D. Counting valid sets for B
// and for B+1 and subtracting — the polynomial Turing reduction — yields
// #SSPk. Weights must fit in float64 exactly (|w| < 2^53).
func SSPkToRDCMono(in SSPkInstance) (*core.Instance, error) {
	r := relation.NewRelation(relation.NewSchema("W", "id", "w"))
	for i, w := range in.Weights {
		if !w.IsInt64() {
			return nil, fmt.Errorf("reduction: weight %v exceeds the exact float range", w)
		}
		r.Insert(relation.Tuple{value.Int(int64(i)), value.Int(w.Int64())})
	}
	if !in.D.IsInt64() {
		return nil, fmt.Errorf("reduction: target %v exceeds the exact float range", in.D)
	}
	db := relation.NewDatabase().Add(r)
	rel := objective.RelevanceFunc(func(t relation.Tuple) float64 {
		return float64(t[1].AsInt())
	})
	return &core.Instance{
		Query: query.IdentityQueryNamed("W", []string{"id", "w"}),
		DB:    db,
		Obj:   objective.New(objective.Mono, rel, objective.ZeroDistance(), 0),
		K:     in.L,
		B:     float64(in.D.Int64()),
	}, nil
}

// CountSSPkViaRDC counts #SSPk through the diversification oracle, making
// the two RDC calls of the Theorem 7.5 Turing reduction.
func CountSSPkViaRDC(in SSPkInstance) (*big.Int, error) {
	inst, err := SSPkToRDCMono(in)
	if err != nil {
		return nil, err
	}
	// Integer weights: the next representable sum above D is D+1.
	return solver.RDCTuringReduce(inst, inst.B, 1, solver.RDCExact), nil
}

// Lambda1SSPkToRDCMono builds, verbatim, the instance of the TODS
// appendix's Theorem 8.3 proof for the λ=1 data complexity of
// RDC(LQ, Fmono): the database holds two tuples (w) and (w') per element,
// the identity query returns all 2|W| of them, δdis((w),(w')) = π(w) and 0
// elsewhere, λ = 1, k = 2L and B = D/(2|W|−1).
//
// The appendix claims the number of valid sets equals the number of
// L-subsets T ⊆ W with Σ_{w∈T} π(w) ≥ D. That equality does NOT hold:
// Fmono's diversity term for a tuple t sums δdis(t, s) over ALL s ∈ Q(D),
// so (w) contributes π(w) whether or not its partner (w') was selected,
// and 2L-sets mixing unpaired elements reach the bound too (see
// TestThm83Lambda1CountErratum for a two-element counterexample). The
// construction is kept executable to document the erratum; Theorem 8.3's
// statement is unaffected (the λ=1 hardness has other proofs), only this
// printed reduction's counting claim fails.
func Lambda1SSPkToRDCMono(weights []int64, l int, d int64) *core.Instance {
	r := relation.NewRelation(relation.NewSchema("IW", "elem", "mark"))
	td := objective.NewTableDistance(0)
	for i, w := range weights {
		orig := relation.Tuple{value.Int(int64(i)), value.Int(0)}
		twin := relation.Tuple{value.Int(int64(i)), value.Int(1)}
		r.Insert(orig)
		r.Insert(twin)
		td.Set(orig, twin, float64(w))
	}
	db := relation.NewDatabase().Add(r)
	n := len(weights)
	return &core.Instance{
		Query: query.IdentityQueryNamed("IW", []string{"elem", "mark"}),
		DB:    db,
		Obj:   objective.New(objective.Mono, objective.ConstRelevance(1), td, 1),
		K:     2 * l,
		B:     float64(d) / float64(2*n-1),
	}
}

// CountSSPkAtLeast counts L-subsets of weights with sum >= d — the quantity
// the Theorem 8.3 appendix proof claims Lambda1SSPkToRDCMono's valid sets
// equal.
func CountSSPkAtLeast(weights []int64, l int, d int64) *big.Int {
	count := new(big.Int)
	subset.ForEach(len(weights), l, func(sel []int) bool {
		sum := int64(0)
		for _, i := range sel {
			sum += weights[i]
		}
		if sum >= d {
			count.Add(count, big.NewInt(1))
		}
		return true
	})
	return count
}
