package reduction

import (
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/objective"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/value"
)

// witnessSchema is the fixed result schema of the Theorem 9.3
// demonstration: one row per (clause, literal) pair, read as "setting var to
// val witnesses clause cid".
var witnessSchema = relation.NewSchema("RW3", "cid", "var", "val")

// ConstrainedSigma returns the fixed constraint set Σ of the Theorem 9.3 /
// Corollary 9.4 demonstration — independent of the input formula, as data
// complexity demands:
//
//	ρcons:  chosen witnesses are consistent — two rows on the same
//	        variable agree on its value.
//	ρone:   at most one row per clause — two rows with the same cid agree
//	        on variable and value (i.e. coincide).
//
// Both are width-2 constraints of C2, validated in PTIME.
func ConstrainedSigma() *compat.Set {
	s := compat.NewSet(2)
	s.MustAdd(compat.MustParse(`forall t1, t2 (t1.var = t2.var -> t1.val = t2.val)`))
	s.MustAdd(compat.MustParse(`forall t1, t2 (t1.cid = t2.cid -> t1.var = t2.var, t1.val = t2.val)`))
	return s
}

// HardConstrainedRefutation builds a refutation family for the Theorem 9.3
// cell with a controllable blow-up: clauses C1..Cn are independent binary
// choices (ai ∨ bi) over fresh variables, and the final two clauses demand
// z and ¬z. The instance is unsatisfiable, so QRD must answer "no", and the
// constrained search has to run through all 2^n consistent witness
// combinations of the choice clauses before the contradiction — the
// database grows linearly (2n+2 rows) while refutation cost doubles per
// row pair, the data-complexity shape the theorem proves.
func HardConstrainedRefutation(n int) *core.Instance {
	f := &sat.CNF{NumVars: 2*n + 1}
	for i := 0; i < n; i++ {
		a, b := 1+2*i, 2+2*i
		f.Clauses = append(f.Clauses, sat.Clause{a, b})
	}
	z := 2*n + 1
	f.Clauses = append(f.Clauses, sat.Clause{z}, sat.Clause{-z})
	return ThreeSATToConstrainedQRD(f)
}

// ThreeSATToConstrainedQRD demonstrates Theorem 9.3 and Corollary 9.4: with
// the FIXED identity query over RW3 and the FIXED constraint set
// ConstrainedSigma, QRD under Fmono — a PTIME cell without constraints
// (Thm 5.4, Cor 8.1) — decides 3SAT when only the database varies.
//
// The database holds one row (i, v, b) per literal occurrence: choosing it
// asserts variable v takes value b and thereby satisfies clause i. With
// k = |clauses|, B = 0 and a trivial objective, a valid set exists iff a
// system of one-witness-per-clause, variable-consistent choices exists —
// iff f is satisfiable.
func ThreeSATToConstrainedQRD(f *sat.CNF) *core.Instance {
	r := relation.NewRelation(witnessSchema)
	for i, c := range f.Clauses {
		for _, lit := range c {
			v, b := lit, int64(1)
			if v < 0 {
				v, b = -v, 0
			}
			r.Insert(relation.Tuple{
				value.Int(int64(i + 1)), value.Int(int64(v)), value.Int(b),
			})
		}
	}
	db := relation.NewDatabase().Add(r)
	return &core.Instance{
		Query: query.IdentityQueryNamed("RW3", witnessSchema.Attrs),
		DB:    db,
		Obj:   objective.New(objective.Mono, objective.ConstRelevance(1), objective.ZeroDistance(), 0),
		K:     len(f.Clauses),
		B:     0,
		Sigma: ConstrainedSigma(),
	}
}
