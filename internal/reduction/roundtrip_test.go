package reduction

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/sat"
	"repro/internal/solver"
)

// cnf builds a CNF from clause literal triples.
func cnf(clauses ...[3]int) *sat.CNF {
	cs := make([]sat.Clause, len(clauses))
	for i, c := range clauses {
		cs[i] = sat.Clause{c[0], c[1], c[2]}
	}
	return sat.NewCNF(cs...)
}

// TestThreeSATRoundTripTable drives a table of formulas with known
// satisfiability through both Theorem 5.1 gadgets and asserts the
// reduction round-trips: φ is satisfiable iff the constructed QRD instance
// has a valid set, for FMS and FMM alike, and the RDC gadget's model count
// matches #SAT exactly (Theorem 7.4 parsimony).
func TestThreeSATRoundTripTable(t *testing.T) {
	cases := []struct {
		name   string
		f      *sat.CNF
		sat    bool
		models int64
	}{
		{"single-clause", cnf([3]int{1, 2, 3}), true, 7},
		{"unit-propagation", cnf([3]int{1, 1, 1}, [3]int{-1, 2, 2}, [3]int{-2, -1, 3}), true, 1},
		{"contradiction", cnf([3]int{1, 1, 1}, [3]int{-1, -1, -1}), false, 0},
		{"xor-chain", cnf([3]int{1, 2, 2}, [3]int{-1, -2, -2}, [3]int{2, 3, 3}, [3]int{-2, -3, -3}), true, 2},
		{"all-assignments", cnf([3]int{1, -1, 2}), true, 4},
		{"pigeonhole-ish", cnf(
			[3]int{1, 2, 2}, [3]int{-1, -2, -2},
			[3]int{1, -2, -2}, [3]int{-1, 2, 2}), false, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.f.Satisfiable(); got != c.sat {
				t.Fatalf("test-case sanity: Satisfiable = %v, want %v", got, c.sat)
			}
			if got := c.f.CountModels(); got != c.models {
				t.Fatalf("test-case sanity: CountModels = %d, want %d", got, c.models)
			}
			qrdSum := ThreeSATToQRDMaxSum(c.f)
			if got := solver.QRDExact(qrdSum).Exists; got != c.sat {
				t.Errorf("QRD(FMS) round-trip = %v, want %v", got, c.sat)
			}
			// The FMM variant scores the min over pairwise distances, so
			// its bound B = 1 presupposes at least one pair: the Theorem
			// 5.1 gadget requires l >= 2 clauses (FMS's B = l(l-1) is
			// degenerate-but-correct at l = 1, FMM's is not).
			if len(c.f.Clauses) >= 2 {
				qrdMin := ThreeSATToQRDMaxMin(c.f)
				if got := solver.QRDExact(qrdMin).Exists; got != c.sat {
					t.Errorf("QRD(FMM) round-trip = %v, want %v", got, c.sat)
				}
			}
			for _, maxMin := range []bool{false, true} {
				if maxMin && len(c.f.Clauses) < 2 {
					continue
				}
				rdc := SATToRDCCount(c.f, maxMin)
				got := solver.RDCExact(rdc).Count
				if got.Cmp(big.NewInt(c.models)) != 0 {
					t.Errorf("RDC(maxMin=%v) count = %v, want %d (parsimonious)", maxMin, got, c.models)
				}
			}
		})
	}
}

// TestCoThreeSATDRPRoundTripTable asserts the Theorem 6.1 gadgets decide
// co-3SAT: U ranks in the top r iff φ is unsatisfiable.
func TestCoThreeSATDRPRoundTripTable(t *testing.T) {
	cases := []struct {
		name  string
		f     *sat.CNF
		unsat bool
	}{
		{"sat-two-clauses", cnf([3]int{1, 2, 3}, [3]int{-1, -2, 3}), false},
		{"unsat-pair", cnf([3]int{1, 1, 1}, [3]int{-1, -1, -1}), true},
		{"unsat-xor-square", cnf(
			[3]int{1, 2, 2}, [3]int{-1, -2, -2},
			[3]int{1, -2, -2}, [3]int{-1, 2, 2}), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			inSum, err := CoThreeSATToDRPMaxSum(c.f)
			if err != nil {
				t.Fatal(err)
			}
			res, err := solver.DRPExact(inSum)
			if err != nil {
				t.Fatal(err)
			}
			if res.InTopR != c.unsat {
				t.Errorf("DRP(FMS) round-trip = %v, want %v", res.InTopR, c.unsat)
			}
			inMin, err := CoThreeSATToDRPMaxMin(c.f)
			if err != nil {
				t.Fatal(err)
			}
			res, err = solver.DRPExact(inMin)
			if err != nil {
				t.Fatal(err)
			}
			if res.InTopR != c.unsat {
				t.Errorf("DRP(FMM) round-trip = %v, want %v", res.InTopR, c.unsat)
			}
		})
	}
}

// TestSubsetSumRoundTripTable drives a table of subset-sum instances
// through the Lemma 7.6 + Theorem 7.5 chain: #SSP brute force, the
// parsimonious SSP→SSPk padding, and the two-call RDC Turing reduction all
// agree.
func TestSubsetSumRoundTripTable(t *testing.T) {
	cases := []struct {
		name    string
		weights []int64
		l       int
		d       int64
		count   int64 // #L-subsets summing exactly to d
	}{
		{"empty-target-zero", nil, 0, 0, 1},
		{"pair-sum", []int64{1, 2, 3, 4}, 2, 5, 2},        // {1,4}, {2,3}
		{"no-solution", []int64{2, 4, 6}, 2, 7, 0},        // odd target, even sums
		{"all-equal", []int64{5, 5, 5, 5}, 3, 15, 4},      // C(4,3)
		{"with-negatives", []int64{-3, 3, 1, 2}, 2, 0, 1}, // {-3,3}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := SSPkInstance{Weights: bigs(c.weights), L: c.l, D: big.NewInt(c.d)}
			want := big.NewInt(c.count)
			if got := CountSSPk(in); got.Cmp(want) != 0 {
				t.Fatalf("test-case sanity: CountSSPk = %v, want %v", got, want)
			}
			got, err := CountSSPkViaRDC(in)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Errorf("RDC Turing reduction = %v, want %v", got, want)
			}
		})
	}
}

func bigs(xs []int64) []*big.Int {
	out := make([]*big.Int, len(xs))
	for i, x := range xs {
		out[i] = big.NewInt(x)
	}
	return out
}

// TestSSPPaddingParsimonyProperty checks Lemma 7.6 on random instances:
// #SSP of the original equals #SSPk of the padded instance at the padded
// cardinality, for every cardinality cut.
func TestSSPPaddingParsimonyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		ws := make([]int64, n)
		for i := range ws {
			ws[i] = int64(rng.Intn(12))
		}
		d := int64(rng.Intn(20))
		ssp := SSPInstance{Weights: ws, D: d}
		padded := SSPToSSPk(ssp)
		if got, want := CountSSPk(padded), CountSSP(ssp); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: padded #SSPk = %v, original #SSP = %v", trial, got, want)
		}
	}
}

// TestSSPkWeightRangeGuard pins the reduction's refusal of weights beyond
// exact float64 range.
func TestSSPkWeightRangeGuard(t *testing.T) {
	huge := new(big.Int).Lsh(big.NewInt(1), 80)
	if _, err := SSPkToRDCMono(SSPkInstance{Weights: []*big.Int{huge}, L: 1, D: big.NewInt(0)}); err == nil {
		t.Error("weight beyond int64 must be refused")
	}
	if _, err := SSPkToRDCMono(SSPkInstance{Weights: []*big.Int{big.NewInt(1)}, L: 1, D: huge}); err == nil {
		t.Error("target beyond int64 must be refused")
	}
}

// TestBoolTupleBitsRoundTrip pins the gadget encoding helpers against each
// other.
func TestBoolTupleBitsRoundTrip(t *testing.T) {
	for _, bs := range [][]bool{{}, {true}, {false}, {true, false, true, true}} {
		got := bits(boolTuple(bs))
		if len(got) != len(bs) {
			t.Fatalf("round-trip length %d, want %d", len(got), len(bs))
		}
		for i := range bs {
			if got[i] != bs[i] {
				t.Errorf("bit %d = %v, want %v", i, got[i], bs[i])
			}
		}
	}
}

// TestRandom3SATReductionAgreement cross-checks the QRD gadgets against
// the DPLL solver on random formulas — the property form of the table
// test.
func TestRandom3SATReductionAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		f := sat.Random3SAT(rng, 3+rng.Intn(3), 3+rng.Intn(5))
		want := f.Satisfiable()
		if got := solver.QRDExact(ThreeSATToQRDMaxSum(f)).Exists; got != want {
			t.Fatalf("trial %d: FMS gadget = %v, DPLL = %v for %s", trial, got, want, f)
		}
		if got := solver.QRDExact(ThreeSATToQRDMaxMin(f)).Exists; got != want {
			t.Fatalf("trial %d: FMM gadget = %v, DPLL = %v for %s", trial, got, want, f)
		}
	}
}
