package reduction

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/query/parse"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/solver"
)

// --- Figure 5 gadgets ---

func TestFigure5Gadgets(t *testing.T) {
	db := GadgetDatabase()
	if db.Relation(RelBool).Len() != 2 {
		t.Error("I01 should have 2 tuples")
	}
	if db.Relation(RelOr).Len() != 4 || db.Relation(RelAnd).Len() != 4 {
		t.Error("I∨ and I∧ should have 4 tuples each")
	}
	if db.Relation(RelNot).Len() != 2 {
		t.Error("I¬ should have 2 tuples")
	}
	// Spot-check the truth tables exactly as printed in Figure 5.
	or := db.Relation(RelOr)
	for _, row := range [][3]int64{{0, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1}} {
		if !or.Contains(relation.Ints(row[0], row[1], row[2])) {
			t.Errorf("I∨ missing row %v", row)
		}
	}
	and := db.Relation(RelAnd)
	for _, row := range [][3]int64{{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 1, 1}} {
		if !and.Contains(relation.Ints(row[0], row[1], row[2])) {
			t.Errorf("I∧ missing row %v", row)
		}
	}
	not := db.Relation(RelNot)
	if !not.Contains(relation.Ints(0, 1)) || !not.Contains(relation.Ints(1, 0)) {
		t.Error("I¬ rows wrong")
	}
}

func TestCubeQueryGeneratesAllAssignments(t *testing.T) {
	db := relation.NewDatabase().Add(BoolRelation())
	for m := 1; m <= 4; m++ {
		q := CubeQuery(m)
		in := Q3SATToQRDMono(&sat.QBF{
			Prefix: make([]sat.Quantifier, m),
			Matrix: sat.NewCNF(sat.Clause{1, -1}),
		})
		if got := len(in.Answers()); got != 1<<m {
			t.Errorf("m=%d: |Q(D)| = %d, want %d", m, got, 1<<m)
		}
		_ = q
		_ = db
	}
}

// --- Theorem 5.1: 3SAT → QRD(CQ, FMS/FMM) ---

func TestThm51ThreeSATToQRD(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		f := sat.Random3SAT(rng, 4, 2+rng.Intn(8))
		want := f.Satisfiable()
		if got := solver.QRDExact(ThreeSATToQRDMaxSum(f)).Exists; got != want {
			t.Fatalf("trial %d FMS: reduction=%v sat=%v for %v", trial, got, want, f)
		}
		if got := solver.QRDExact(ThreeSATToQRDMaxMin(f)).Exists; got != want {
			t.Fatalf("trial %d FMM: reduction=%v sat=%v for %v", trial, got, want, f)
		}
	}
}

func TestThm51KnownFormulas(t *testing.T) {
	satisfiable := sat.NewCNF(sat.Clause{1, 2, 3}, sat.Clause{-1, -2, 3})
	unsat := sat.NewCNF(
		sat.Clause{1, 2, 3}, sat.Clause{1, 2, -3}, sat.Clause{1, -2, 3}, sat.Clause{1, -2, -3},
		sat.Clause{-1, 2, 3}, sat.Clause{-1, 2, -3}, sat.Clause{-1, -2, 3}, sat.Clause{-1, -2, -3},
	)
	if !solver.QRDExact(ThreeSATToQRDMaxSum(satisfiable)).Exists {
		t.Error("satisfiable formula should yield a valid set")
	}
	if solver.QRDExact(ThreeSATToQRDMaxSum(unsat)).Exists {
		t.Error("unsatisfiable formula should yield no valid set")
	}
	if solver.QRDExact(ThreeSATToQRDMaxMin(unsat)).Exists {
		t.Error("unsatisfiable formula should yield no valid set (FMM)")
	}
}

// --- Theorem 7.4: #SAT → RDC(CQ, FMS/FMM), parsimonious ---

func TestThm74SATToRDCParsimonious(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		f := sat.Random3SAT(rng, 4, 2+rng.Intn(6))
		want := f.CountProjected(f.Vars()) // models over appearing variables
		for _, maxMin := range []bool{false, true} {
			in := SATToRDCCount(f, maxMin)
			got := solver.RDCExact(in).Count
			if got.Cmp(big.NewInt(want)) != 0 {
				t.Fatalf("trial %d maxMin=%v: RDC=%v #SAT=%d for %v", trial, maxMin, got, want, f)
			}
		}
	}
}

// --- Theorem 6.1: co-3SAT → DRP(CQ, FMS/FMM) ---

func TestThm61CoThreeSATToDRP(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		f := sat.Random3SAT(rng, 4, 2+rng.Intn(5))
		want := !f.Satisfiable()
		inMS, err := CoThreeSATToDRPMaxSum(f)
		if err != nil {
			t.Fatal(err)
		}
		resMS, err := solver.DRPExact(inMS)
		if err != nil {
			t.Fatalf("trial %d FMS: %v", trial, err)
		}
		if resMS.InTopR != want {
			t.Fatalf("trial %d FMS: rank<=1 %v, want %v for %v", trial, resMS.InTopR, want, f)
		}
		inMM, err := CoThreeSATToDRPMaxMin(f)
		if err != nil {
			t.Fatal(err)
		}
		resMM, err := solver.DRPExact(inMM)
		if err != nil {
			t.Fatalf("trial %d FMM: %v", trial, err)
		}
		if resMM.InTopR != want {
			t.Fatalf("trial %d FMM: rank<=1 %v, want %v for %v", trial, resMM.InTopR, want, f)
		}
	}
}

func TestThm61RejectsSingleClause(t *testing.T) {
	f := sat.NewCNF(sat.Clause{1, 2, 3})
	if _, err := CoThreeSATToDRPMaxSum(f); err == nil {
		t.Error("single-clause formulas are outside the repaired construction")
	}
}

// --- Theorem 5.1/6.1 FO case: membership reductions ---

func membershipFixture() (queryText string, db *relation.Database) {
	r := relation.NewRelation(relation.NewSchema("R", "a", "b"))
	r.InsertAll(relation.Ints(1, 2), relation.Ints(2, 3), relation.Ints(3, 3))
	s := relation.NewRelation(relation.NewSchema("S", "a"))
	s.InsertAll(relation.Ints(2))
	db = relation.NewDatabase().Add(r).Add(s)
	// Q(x) :- R(x, y), not S(x): answers {1, 3}.
	return "Q(x) :- R(x, y), not S(x)", db
}

func TestThm51MembershipToQRDFO(t *testing.T) {
	text, db := membershipFixture()
	q := parse.MustQuery(text)
	cases := []struct {
		s    relation.Tuple
		want bool
	}{
		{relation.Ints(1), true},
		{relation.Ints(2), false},
		{relation.Ints(3), true},
	}
	for _, maxMin := range []bool{false, true} {
		for _, c := range cases {
			in, err := MembershipToQRDFO(q, db, c.s, maxMin)
			if err != nil {
				t.Fatal(err)
			}
			if got := solver.QRDExact(in).Exists; got != c.want {
				t.Errorf("maxMin=%v s=%v: got %v, want %v", maxMin, c.s, got, c.want)
			}
		}
	}
}

func TestThm61MembershipToDRPFO(t *testing.T) {
	text, db := membershipFixture()
	q := parse.MustQuery(text)
	cases := []struct {
		s         relation.Tuple
		notMember bool
	}{
		{relation.Ints(1), false},
		{relation.Ints(2), true},
		{relation.Ints(3), false},
	}
	for _, maxMin := range []bool{false, true} {
		for _, c := range cases {
			in, err := MembershipToDRPFO(q, db, c.s, maxMin)
			if err != nil {
				t.Fatal(err)
			}
			res, err := solver.DRPExact(in)
			if err != nil {
				t.Fatalf("maxMin=%v s=%v: %v", maxMin, c.s, err)
			}
			if res.InTopR != c.notMember {
				t.Errorf("maxMin=%v s=%v: rank<=1 %v, want %v", maxMin, c.s, res.InTopR, c.notMember)
			}
		}
	}
}

func TestMembershipRejectsArityMismatch(t *testing.T) {
	text, db := membershipFixture()
	q := parse.MustQuery(text)
	if _, err := MembershipToQRDFO(q, db, relation.Ints(1, 2), false); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	if _, err := MembershipToDRPFO(q, db, relation.Ints(7), false); err == nil {
		t.Error("out-of-domain tuple must be rejected by the DRP construction")
	}
}

// --- Lemma 5.3: the inductive distance equals suffix-QBF truth ---

func TestLemma53DistanceEqualsSuffixTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(3)
		q := sat.RandomQBF(rng, m, 2+rng.Intn(6))
		q.Matrix.NumVars = m
		pd := NewPrefixDistance(q)
		// For every prefix p, delta(p) must equal the truth of
		// P_{l+1}x_{l+1}...Pm xm ψ under p.
		var walk func(p []bool)
		walk = func(p []bool) {
			if len(p) >= m {
				return
			}
			a := make(sat.Assignment, len(p))
			for i, b := range p {
				a[i+1] = b
			}
			want := q.EvalUnder(a, len(p)+1)
			if got := pd.delta(p); got != want {
				t.Fatalf("trial %d: delta(%v) = %v, suffix truth = %v", trial, p, got, want)
			}
			walk(append(append([]bool(nil), p...), true))
			walk(append(append([]bool(nil), p...), false))
		}
		walk(nil)
	}
}

// --- Figure 2: the worked example distance table ---

func TestFigure2Reproduction(t *testing.T) {
	pd := NewPrefixDistance(Figure2QBF())
	d := func(i, j int) float64 { return pd.Dis(Figure2Tuple(i), Figure2Tuple(j)) }

	// Level l=3 (P4 = ∀): the figure's eight adjacent pairs.
	level3 := map[[2]int]float64{
		{1, 2}: 0, {3, 4}: 1, {5, 6}: 1, {7, 8}: 1,
		{9, 10}: 0, {11, 12}: 1, {13, 14}: 0, {15, 16}: 1,
	}
	for pair, want := range level3 {
		if got := d(pair[0], pair[1]); got != want {
			t.Errorf("δ(t%d,t%d) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
	// Level l=2 (P3 = ∃): all four cross-group blocks are 1.
	blocks2 := [][4]int{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}, {13, 14, 15, 16}}
	for _, blk := range blocks2 {
		for _, i := range []int{blk[0], blk[1]} {
			for _, j := range []int{blk[2], blk[3]} {
				if got := d(i, j); got != 1 {
					t.Errorf("l=2: δ(t%d,t%d) = %v, want 1", i, j, got)
				}
			}
		}
	}
	// Level l=1 (P2 = ∀): [1,4]×[5,8] and [9,12]×[13,16] all 1.
	for i := 1; i <= 4; i++ {
		for j := 5; j <= 8; j++ {
			if got := d(i, j); got != 1 {
				t.Errorf("l=1: δ(t%d,t%d) = %v, want 1", i, j, got)
			}
		}
	}
	for i := 9; i <= 12; i++ {
		for j := 13; j <= 16; j++ {
			if got := d(i, j); got != 1 {
				t.Errorf("l=1: δ(t%d,t%d) = %v, want 1", i, j, got)
			}
		}
	}
	// Level l=0 (P1 = ∃): [1,8]×[9,16] all 1.
	for i := 1; i <= 8; i++ {
		for j := 9; j <= 16; j++ {
			if got := d(i, j); got != 1 {
				t.Errorf("l=0: δ(t%d,t%d) = %v, want 1", i, j, got)
			}
		}
	}
	// The figure's ψ annotations.
	psiWant := map[int]bool{
		1: true, 2: false, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true,
		9: true, 10: false, 11: true, 12: true, 13: false, 14: false, 15: true, 16: true,
	}
	for i, want := range psiWant {
		if got := pd.psi(bits(Figure2Tuple(i))); got != want {
			t.Errorf("ψ[t%d] = %v, want %v", i, got, want)
		}
	}
}

// --- Theorem 5.2: Q3SAT → QRD(CQ, Fmono) ---

func TestThm52Q3SATToQRDMono(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(4)
		q := sat.RandomQBF(rng, m, 2+rng.Intn(6))
		q.Matrix.NumVars = m
		want := q.Eval()
		in := Q3SATToQRDMono(q)
		if got := solver.QRDExact(in).Exists; got != want {
			t.Fatalf("trial %d: reduction=%v ϕ=%v (m=%d)", trial, got, want, m)
		}
	}
	// The Figure 2 sentence is true.
	if !solver.QRDExact(Q3SATToQRDMono(Figure2QBF())).Exists {
		t.Error("Figure 2 sentence should yield a valid set")
	}
}

// --- Theorem 6.2: Q3SAT → DRP(CQ, Fmono) ---

func TestThm62Q3SATToDRPMono(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tested := 0
	for trial := 0; tested < 15 && trial < 200; trial++ {
		m := 2 + rng.Intn(3)
		q := sat.RandomQBF(rng, m, 2+rng.Intn(5))
		q.Matrix.NumVars = m
		in, degenerate := Q3SATToDRPMono(q)
		if degenerate {
			continue // documented corner; covered below
		}
		tested++
		want := q.Eval()
		res, err := solver.DRPExact(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.InTopR != want {
			t.Fatalf("trial %d: rank<=1 is %v, ϕ is %v (m=%d)", trial, res.InTopR, want, m)
		}
	}
	if tested < 10 {
		t.Fatalf("too few non-degenerate instances exercised: %d", tested)
	}
}

// TestThm62KnownCorner documents the errata: with an identically-zero
// distance (unsatisfiable matrix) and ϕ false, the paper's construction
// ranks U first anyway. The constructor flags this.
func TestThm62KnownCorner(t *testing.T) {
	q := &sat.QBF{
		Prefix: []sat.Quantifier{sat.Exists, sat.Exists},
		Matrix: sat.NewCNF(sat.Clause{1}, sat.Clause{-1}),
	}
	if q.Eval() {
		t.Fatal("corner formula should be false")
	}
	in, degenerate := Q3SATToDRPMono(q)
	if !degenerate {
		t.Fatal("constructor should flag the degenerate corner")
	}
	res, err := solver.DRPExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InTopR {
		t.Error("the corner shows rank(U)=1 despite ϕ being false — the flagged gap")
	}
}

// --- Theorem 7.1: #Σ1SAT → RDC(CQ, FMS/FMM), parsimonious ---

func TestThm71SigmaSATToRDC(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		// ψ over X = {1, 2}, Y = {3, 4}.
		f := sat.Random3SAT(rng, 4, 2+rng.Intn(4))
		xVars, yVars := []int{1, 2}, []int{3, 4}
		want := CountSigmaSAT(f, yVars)
		for _, maxMin := range []bool{false, true} {
			in, err := SigmaSATToRDC(f, xVars, yVars, maxMin)
			if err != nil {
				t.Fatal(err)
			}
			got := solver.RDCExact(in).Count
			if got.Cmp(big.NewInt(want)) != 0 {
				t.Fatalf("trial %d maxMin=%v: RDC=%v #Σ1SAT=%d for %v", trial, maxMin, got, want, f)
			}
		}
	}
}

func TestThm71RejectsBadPartition(t *testing.T) {
	f := sat.NewCNF(sat.Clause{1, 2, 3})
	if _, err := SigmaSATToRDC(f, []int{1}, []int{1, 2, 3}, false); err == nil {
		t.Error("overlapping X/Y must be rejected")
	}
	if _, err := SigmaSATToRDC(f, []int{1}, []int{2}, false); err == nil {
		t.Error("uncovered variable must be rejected")
	}
}

// --- Theorem 7.2: #QBF → RDC(CQ, Fmono), parsimonious ---

func TestThm72QBFToRDCMono(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 8; trial++ {
		m, n := 2, 2
		f := sat.Random3SAT(rng, m+n, 2+rng.Intn(4))
		f.NumVars = m + n
		yPrefix := []sat.Quantifier{sat.ForAll, sat.Quantifier(rng.Intn(2) == 0)}
		want := CountQBFFreeModels(f, m, yPrefix)
		in, err := QBFToRDCMono(f, m, yPrefix)
		if err != nil {
			t.Fatal(err)
		}
		got := solver.RDCExact(in).Count
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("trial %d: RDC=%v #QBF=%d for %v", trial, got, want, f)
		}
	}
}

func TestThm72Rejections(t *testing.T) {
	f := sat.NewCNF(sat.Clause{1, 2})
	if _, err := QBFToRDCMono(f, 1, []sat.Quantifier{sat.ForAll}); err == nil {
		t.Error("n=1 must be rejected (tie corner)")
	}
	if _, err := QBFToRDCMono(f, 1, []sat.Quantifier{sat.Exists, sat.Exists}); err == nil {
		t.Error("non-universal first Y quantifier must be rejected")
	}
}

// --- Lemma 7.6 and Theorem 7.5: subset sums ---

func TestLemma76SSPToSSPkParsimonious(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(3)
		in := SSPInstance{D: int64(rng.Intn(30))}
		for i := 0; i < n; i++ {
			in.Weights = append(in.Weights, int64(rng.Intn(12)))
		}
		out := SSPToSSPk(in)
		if out.L != n || len(out.Weights) != 2*n {
			t.Fatalf("trial %d: output shape wrong", trial)
		}
		if CountSSP(in).Cmp(CountSSPk(out)) != 0 {
			t.Fatalf("trial %d: #SSP=%v #SSPk=%v for %+v", trial, CountSSP(in), CountSSPk(out), in)
		}
	}
}

func TestThm75SSPkViaRDCTuring(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		in := SSPkInstance{L: 2 + rng.Intn(2), D: big.NewInt(int64(rng.Intn(20)))}
		for i := 0; i < n; i++ {
			in.Weights = append(in.Weights, big.NewInt(int64(rng.Intn(10))))
		}
		want := CountSSPk(in)
		got, err := CountSSPkViaRDC(in)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: via RDC %v, brute %v for %+v", trial, got, want, in)
		}
	}
}

func TestFullSSPChain(t *testing.T) {
	// #SSP → #SSPk → RDC, end to end.
	in := SSPInstance{Weights: []int64{3, 5, 7, 9}, D: 12}
	out := SSPToSSPk(in)
	got, err := CountSSPkViaRDC(out)
	if err != nil {
		t.Fatal(err)
	}
	// Subsets of {3,5,7,9} summing to 12: {3,9}, {5,7} → 2.
	if got.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("chain count = %v, want 2", got)
	}
}

// --- Theorem 9.3 / Corollary 9.4: constraints make mono-QRD hard ---

func TestThm93ConstrainedQRDDecides3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		f := sat.Random3SAT(rng, 4, 2+rng.Intn(7))
		in := ThreeSATToConstrainedQRD(f)
		if err := in.Sigma.Validate(in.ResultSchema()); err != nil {
			t.Fatal(err)
		}
		want := f.Satisfiable()
		if got := solver.QRDExact(in).Exists; got != want {
			t.Fatalf("trial %d: constrained QRD=%v sat=%v for %v", trial, got, want, f)
		}
	}
}

func TestThm93SigmaIsFixedAndSmall(t *testing.T) {
	s := ConstrainedSigma()
	if s.Len() != 2 || s.M != 2 {
		t.Errorf("Σ should be two width-2 constraints, got %d (m=%d)", s.Len(), s.M)
	}
	for _, c := range s.Constraints {
		if c.Width() > 2 {
			t.Errorf("constraint %v exceeds width 2", c)
		}
	}
}

// --- Theorem 9.3: designed refutation family ---

func TestHardConstrainedRefutation(t *testing.T) {
	var prevNodes int
	for n := 2; n <= 7; n++ {
		in := HardConstrainedRefutation(n)
		if got, want := len(in.Answers()), 2*n+2; got != want {
			t.Fatalf("n=%d: |D| = %d, want %d (linear growth)", n, got, want)
		}
		res := solver.QRDExact(in)
		if res.Exists {
			t.Fatalf("n=%d: refutation instance reported satisfiable", n)
		}
		if n > 2 && res.Stats.Nodes < 2*prevNodes-prevNodes/2 {
			t.Errorf("n=%d: nodes %d did not roughly double from %d", n, res.Stats.Nodes, prevNodes)
		}
		prevNodes = res.Stats.Nodes
	}
	// Dropping the contradiction makes the family satisfiable: same schema
	// and Σ, answer flips.
	f := &sat.CNF{NumVars: 5}
	f.Clauses = append(f.Clauses, sat.Clause{1, 2}, sat.Clause{3, 4}, sat.Clause{5})
	if !solver.QRDExact(ThreeSATToConstrainedQRD(f)).Exists {
		t.Error("satisfiable family should admit a valid set")
	}
}

// --- Theorem 8.3 appendix erratum (λ=1 RDC(Fmono) data complexity) ---

// TestThm83Lambda1CountErratum machine-checks the erratum documented on
// Lambda1SSPkToRDCMono: the appendix's claimed count equality fails on a
// two-element instance. W = {a, b}, π(a) = 10, π(b) = 0, l = 1, d = 10:
// exactly one 1-subset reaches 10, but five 2-sets of the constructed
// instance are valid, because Fmono charges δdis((w),(w')) to (w) against
// the whole answer set, partner selected or not. (π(a) = 12 > d keeps all
// comparisons away from float equality at the bound.)
func TestThm83Lambda1CountErratum(t *testing.T) {
	weights := []int64{12, 0}
	in := Lambda1SSPkToRDCMono(weights, 1, 10)
	got := solver.RDCExact(in).Count
	claimed := CountSSPkAtLeast(weights, 1, 10)
	if claimed.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("claimed count = %v, want 1", claimed)
	}
	if got.Cmp(big.NewInt(5)) != 0 {
		t.Fatalf("constructed instance has %v valid sets, expected 5 (the erratum)", got)
	}
	if got.Cmp(claimed) == 0 {
		t.Fatal("counts unexpectedly agree; the erratum documentation is stale")
	}
}

// TestThm83Lambda1PairedSetsAreValid checks the direction of the appendix
// proof that does hold: for every L-subset T with sum >= d, the paired set
// {(w),(w') : w in T} is valid. So constructed-instance counts are an upper
// bound on the claimed count.
func TestThm83Lambda1PairedSetsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(3)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = rng.Int63n(20)
		}
		l := 1 + rng.Intn(n-1)
		d := rng.Int63n(40)
		in := Lambda1SSPkToRDCMono(weights, l, d)
		answers := in.Answers()
		byKey := map[string]relation.Tuple{}
		for _, tp := range answers {
			byKey[tp.Key()] = tp
		}
		valid := solver.RDCExact(in).Count
		claimed := CountSSPkAtLeast(weights, l, d)
		if valid.Cmp(claimed) < 0 {
			t.Fatalf("trial %d: valid sets %v < claimed %v — paired direction broken", trial, valid, claimed)
		}
	}
}
