// Giftshop reproduces the paper's running example (Examples 1.1 and 3.1):
// Peter asks a recommender for k gifts for his 14-year-old niece Grace in
// the price range [$20, $30], excluding anything he already bought her —
// an FO query (the exclusion needs negation over the history relation) —
// with relevance driven by purchase history ratings and distance by gift
// type.
//
// It contrasts the three objective functions of Gollapudi & Sharma on the
// same query: FMS (max-sum), FMM (max-min) and Fmono (mono-objective), and
// shows the language classification of the CQ vs FO variants of Q0.
//
// Run with:
//
//	go run ./examples/giftshop
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// catalogRow mirrors the catalog(item, type, price, inStock) schema.
type catalogRow struct {
	item, typ    string
	price, stock int
}

// historyRow mirrors history(item, buyer, recipient, gender, age, rel,
// event, rating).
type historyRow struct {
	item, buyer, recipient, gender string
	age                            int
	rel, event                     string
	rating                         int
}

func main() {
	e := diversification.NewEngine()
	e.MustCreateTable("catalog", "item", "type", "price", "inStock")
	e.MustCreateTable("history", "item", "buyer", "recipient", "gender", "age", "rel", "event", "rating")

	catalog := []catalogRow{
		{"charm bracelet", "jewelry", 28, 4},
		{"adventure novel", "book", 22, 9},
		{"jigsaw puzzle", "toy", 25, 4},
		{"silk scarf", "fashion", 30, 1},
		{"acrylic paints", "artsy", 21, 7},
		{"science kit", "educational", 27, 6},
		{"poetry anthology", "book", 20, 8},
		{"board game", "toy", 29, 2},
		{"sketchbook", "artsy", 23, 5},
		{"hair clips", "fashion", 24, 6},
	}
	for _, c := range catalog {
		e.MustInsert("catalog", c.item, c.typ, c.price, c.stock)
	}

	history := []historyRow{
		// Highly rated holiday gifts for teenage girls from relatives: these
		// drive relevance up for their items.
		{"charm bracelet", "buyerA", "girl1", "F", 13, "aunt", "holiday", 5},
		{"science kit", "buyerB", "girl2", "F", 14, "uncle", "holiday", 5},
		{"acrylic paints", "buyerC", "girl3", "F", 15, "uncle", "holiday", 4},
		{"jigsaw puzzle", "buyerD", "girl4", "F", 12, "aunt", "holiday", 4},
		{"board game", "buyerE", "boy1", "M", 9, "father", "birthday", 3},
		{"silk scarf", "buyerF", "adult1", "F", 34, "friend", "birthday", 5},
		// Peter already bought Grace the adventure novel: the FO query
		// must exclude it.
		{"adventure novel", "peter", "Grace", "F", 14, "uncle", "birthday", 4},
	}
	for _, h := range history {
		e.MustInsert("history", h.item, h.buyer, h.recipient, h.gender, h.age, h.rel, h.event, h.rating)
	}

	// Q0 of Example 3.1: gifts in [$20,$30] that Peter has not already given
	// Grace. The "not exists" forces first-order logic.
	q0 := `Q(item, type, price) :- catalog(item, type, price, s), price >= 20, price <= 30,
	        not exists b, r, g, a, x, ev, y (history(item, b, r, g, a, x, ev, y), b = "peter", r = "Grace")`

	// The CQ variant without the exclusion, for the language contrast the
	// paper's Example 1.1 draws.
	qCQ := "Q(item, type, price) :- catalog(item, type, price, s), price >= 20, price <= 30"

	for _, q := range []struct{ label, src string }{{"Q0 (with exclusion)", q0}, {"Q0' (no exclusion)", qCQ}} {
		lang, err := e.Language(q.src)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := e.Query(q.src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s language: %-5s |Q(D)| = %d\n", q.label, lang, rs.Len())
	}
	fmt.Println()

	// δrel from history: items presented to girls aged 11-16 by relatives
	// for holidays score their rating; others get a default of 1.
	ratings := map[string]float64{}
	for _, h := range history {
		if h.gender == "F" && h.age >= 11 && h.age <= 16 &&
			(h.rel == "aunt" || h.rel == "uncle") && h.event == "holiday" {
			if float64(h.rating) > ratings[h.item] {
				ratings[h.item] = float64(h.rating)
			}
		}
	}
	relevance := func(r diversification.Row) float64 {
		if v, ok := ratings[r.Get("item").(string)]; ok {
			return v
		}
		return 1
	}
	// δdis: type difference, with "artsy" vs "educational" counted as
	// farther apart than sibling categories (Example 3.1's illustration).
	distance := func(a, b diversification.Row) float64 {
		ta, tb := a.Get("type").(string), b.Get("type").(string)
		switch {
		case ta == tb:
			return 0
		case (ta == "artsy" && tb == "educational") || (ta == "educational" && tb == "artsy"):
			return 2
		default:
			return 1
		}
	}

	// One prepared handle for the FO query; the three objectives are
	// per-call overrides, so the parse/validate/evaluate work — including
	// evaluating the negation over the history relation — happens once.
	p, err := e.Prepare(q0,
		diversification.WithK(4),
		diversification.WithLambda(0.5),
		diversification.WithRelevance(relevance),
		diversification.WithDistance(distance),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for _, obj := range []diversification.Objective{
		diversification.MaxSum, diversification.MaxMin, diversification.Mono,
	} {
		sel, err := p.Diversify(ctx, diversification.WithObjective(obj))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (F = %.3f):\n", obj, sel.Value)
		for _, row := range sel.Rows {
			fmt.Printf("  %-18v %-12v $%v\n", row.Get("item"), row.Get("type"), row.Get("price"))
		}
		fmt.Println()
	}
}
