// Courses reproduces the course-selection scenario of the paper's
// Example 9.1 (after Koutrika et al. and Parameswaran et al.): recommending
// a diverse package of k courses subject to compatibility constraints in
// the class Cm — if CS450 is selected, its prerequisites CS220 and CS350
// must be selected too.
//
// It demonstrates the Section 9 result experimentally: the same
// mono-objective request that is tractable without constraints changes its
// answer set — and its computational character — once constraints are
// imposed, because valid sets must now close over prerequisites.
//
// Run with:
//
//	go run ./examples/courses
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	e := diversification.NewEngine()
	e.MustCreateTable("courses", "id", "title", "area", "level", "credit")

	type course struct {
		id, title, area string
		level, credit   int
	}
	for _, c := range []course{
		{"CS220", "Data Structures", "systems", 2, 10},
		{"CS350", "Databases", "data", 3, 10},
		{"CS450", "Advanced Query Processing", "data", 4, 20},
		{"CS230", "Computer Architecture", "systems", 2, 10},
		{"CS340", "Machine Learning", "ai", 3, 20},
		{"CS440", "Deep Learning", "ai", 4, 20},
		{"CS260", "Algorithms", "theory", 2, 10},
		{"CS360", "Complexity Theory", "theory", 3, 20},
	} {
		e.MustInsert("courses", c.id, c.title, c.area, c.level, c.credit)
	}

	// Relevance prefers advanced courses; distance separates areas so the
	// package spans the curriculum.
	relevance := func(r diversification.Row) float64 { return float64(r.Get("level").(int64)) }
	distance := func(a, b diversification.Row) float64 {
		if a.Get("area") == b.Get("area") {
			return 0
		}
		return 1
	}

	// The Example 9.1 prerequisite constraint ρ2, in Cm syntax, plus a
	// breadth constraint: no three courses from the same area (the ρ3
	// pattern from team formation, adapted).
	prerequisites := []string{
		`forall t (t.id = "CS450" -> exists p1, p2 (p1.id = "CS220", p2.id = "CS350"))`,
		`forall t (t.id = "CS440" -> exists p (p.id = "CS340"))`,
		`forall t1, t2, t3 (t1.area = t2.area, t2.area = t3.area,
		     t1.id != t2.id, t1.id != t3.id, t2.id != t3.id -> t1.area != t2.area)`,
	}

	// One prepared handle; the constrained runs override Σ per call while
	// reusing the same cached answer set.
	p, err := e.Prepare("Q(id, title, area, level) :- courses(id, title, area, level, c)",
		diversification.WithK(4),
		diversification.WithObjective(diversification.MaxSum),
		diversification.WithLambda(0.4),
		diversification.WithRelevance(relevance),
		diversification.WithDistance(distance),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	unconstrained, err := p.Diversify(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("without constraints (pure relevance/diversity trade-off):")
	printCourses(unconstrained)

	sel, err := p.Diversify(ctx, diversification.WithConstraints(prerequisites...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("with Cm constraints (prerequisites + area breadth):")
	printCourses(sel)

	// RDC under constraints: how many valid 4-packages reach the
	// constrained optimum's value? Usually fewer — constraints shrink the
	// space of valid sets, the effect Theorem 9.3 formalizes.
	for _, variant := range []struct {
		label string
		opts  []diversification.Option
	}{
		{"unconstrained", nil},
		{"constrained", []diversification.Option{diversification.WithConstraints(prerequisites...)}},
	} {
		opts := append([]diversification.Option{diversification.WithBound(sel.Value)}, variant.opts...)
		n, err := p.Count(ctx, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("4-packages with F >= %.2f (%s): %v\n", sel.Value, variant.label, n)
	}
}

func printCourses(sel *diversification.Selection) {
	for _, row := range sel.Rows {
		fmt.Printf("  %-6v %-28v %-8v level %v\n",
			row.Get("id"), row.Get("title"), row.Get("area"), row.Get("level"))
	}
	fmt.Printf("  F = %.3f\n\n", sel.Value)
}
