// Quickstart: the smallest end-to-end use of the diversification library.
//
// It builds a tiny product table, asks for the 3 answers of a range query
// that best balance relevance (price near a target) against diversity
// (distinct categories), and prints the selection — the optimization form
// of the paper's QRD problem under max-sum diversification.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	e := diversification.NewEngine()
	e.MustCreateTable("items", "id", "category", "price")

	type item struct {
		id       int
		category string
		price    int
	}
	for _, it := range []item{
		{1, "book", 12}, {2, "book", 18}, {3, "toy", 25},
		{4, "toy", 22}, {5, "jewelry", 48}, {6, "jewelry", 31},
		{7, "fashion", 27}, {8, "artsy", 20}, {9, "artsy", 45},
		{10, "educational", 24},
	} {
		e.MustInsert("items", it.id, it.category, it.price)
	}

	// Prepare once: the query is parsed, classified and validated here, and
	// the answer set is materialized on the first solve and cached for the
	// rest. δrel: prefer prices near $25. δdis: categories differ.
	p, err := e.Prepare(
		"Q(id, category, price) :- items(id, category, price), price <= 50",
		diversification.WithK(3),
		diversification.WithObjective(diversification.MaxSum), // FMS of Gollapudi & Sharma
		diversification.WithLambda(0.5),                       // equal weight on relevance and diversity
		diversification.WithRelevance(func(r diversification.Row) float64 {
			return 30 - math.Abs(float64(r.Get("price").(int64))-25)
		}),
		diversification.WithDistance(func(a, b diversification.Row) float64 {
			if a.Get("category") == b.Get("category") {
				return 0
			}
			return 1
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	sel, err := p.Diversify(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d diverse selection (F = %.2f, %s):\n", len(sel.Rows), sel.Value, sel.Method)
	for _, row := range sel.Rows {
		fmt.Printf("  item %-2v  %-12v $%v\n", row.Get("id"), row.Get("category"), row.Get("price"))
	}

	// The same prepared handle answers the decision problem (QRD) and the
	// counting problem (RDC) without re-parsing or re-evaluating the query:
	// is there a 3-set reaching F >= 50, and how many are there?
	ok, err := p.Decide(ctx, diversification.WithBound(50))
	if err != nil {
		log.Fatal(err)
	}
	n, err := p.Count(ctx, diversification.WithBound(50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQRD: a 3-set with F >= 50 exists: %v\n", ok)
	fmt.Printf("RDC: number of such sets: %v\n", n)
}
