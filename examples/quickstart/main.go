// Quickstart: the smallest end-to-end use of the diversification library.
//
// It builds a tiny product table, asks for the 3 answers of a range query
// that best balance relevance (price near a target) against diversity
// (distinct categories), and prints the selection — the optimization form
// of the paper's QRD problem under max-sum diversification.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	e := diversification.NewEngine()
	e.MustCreateTable("items", "id", "category", "price")

	type item struct {
		id       int
		category string
		price    int
	}
	for _, it := range []item{
		{1, "book", 12}, {2, "book", 18}, {3, "toy", 25},
		{4, "toy", 22}, {5, "jewelry", 48}, {6, "jewelry", 31},
		{7, "fashion", 27}, {8, "artsy", 20}, {9, "artsy", 45},
		{10, "educational", 24},
	} {
		e.MustInsert("items", it.id, it.category, it.price)
	}

	// δrel: prefer prices near $25. δdis: categories differ.
	sel, err := e.Diversify(diversification.Request{
		Query:     "Q(id, category, price) :- items(id, category, price), price <= 50",
		K:         3,
		Objective: "max-sum", // FMS of Gollapudi & Sharma, revised per Vieira et al.
		Lambda:    0.5,       // equal weight on relevance and diversity
		Relevance: func(r diversification.Row) float64 {
			return 30 - math.Abs(float64(r.Get("price").(int64))-25)
		},
		Distance: func(a, b diversification.Row) float64 {
			if a.Get("category") == b.Get("category") {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d diverse selection (F = %.2f, %s):\n", len(sel.Rows), sel.Value, sel.Method)
	for _, row := range sel.Rows {
		fmt.Printf("  item %-2v  %-12v $%v\n", row.Get("id"), row.Get("category"), row.Get("price"))
	}

	// The same request as a decision problem (QRD) and a counting problem
	// (RDC): is there a 3-set reaching F >= 50, and how many are there?
	req := diversification.Request{
		Query:     "Q(id, category, price) :- items(id, category, price), price <= 50",
		K:         3,
		Objective: "max-sum",
		Lambda:    0.5,
		Relevance: func(r diversification.Row) float64 {
			return 30 - math.Abs(float64(r.Get("price").(int64))-25)
		},
		Distance: func(a, b diversification.Row) float64 {
			if a.Get("category") == b.Get("category") {
				return 0
			}
			return 1
		},
		Bound: 50,
	}
	ok, err := e.Decide(req)
	if err != nil {
		log.Fatal(err)
	}
	n, err := e.Count(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQRD: a 3-set with F >= %.0f exists: %v\n", req.Bound, ok)
	fmt.Printf("RDC: number of such sets: %v\n", n)
}
