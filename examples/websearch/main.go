// Websearch diversifies search results — the application the paper's
// introduction cites first (Gollapudi & Sharma; Agrawal et al.). A query
// over an inverted-index-style relation returns pages matching "jaguar";
// the mono-objective formulation Fmono then scores each page by relevance
// plus its mean distance to the ENTIRE result set, rewarding novelty and
// coverage: the selected page set spans the query's senses (animal, car,
// operating system) instead of piling onto the dominant one.
//
// Fmono is the one objective whose value depends on all of Q(D), the source
// of its PSPACE-completeness for combined complexity (Theorem 5.2) and of
// its PTIME data complexity (Theorem 5.4) — both visible here: the engine
// solves the fixed-query instance with the paper's modular PTIME algorithm.
//
// Run with:
//
//	go run ./examples/websearch
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

type page struct {
	id      int
	title   string
	sense   string // which meaning of "jaguar" the page is about
	score   int    // retrieval score out of 100
	matches string // the matched term
}

var pages = []page{
	{1, "Jaguar XF review: the executive saloon", "car", 93, "jaguar"},
	{2, "Jaguar unveils electric concept", "car", 90, "jaguar"},
	{3, "Used Jaguar buying guide", "car", 86, "jaguar"},
	{4, "Jaguar F-Type specifications", "car", 84, "jaguar"},
	{5, "Jaguars in the Amazon: habitat and diet", "animal", 82, "jaguar"},
	{6, "Jaguar conservation status 2026", "animal", 78, "jaguar"},
	{7, "Mac OS X Jaguar retrospective", "software", 74, "jaguar"},
	{8, "Jacksonville Jaguars season preview", "sports", 71, "jaguar"},
	{9, "Big cats compared: jaguar vs leopard", "animal", 69, "jaguar"},
	{10, "Atari Jaguar: the 64-bit gamble", "hardware", 64, "jaguar"},
}

func main() {
	e := diversification.NewEngine()
	e.MustCreateTable("pages", "id", "title", "sense", "score", "term")
	for _, p := range pages {
		e.MustInsert("pages", p.id, p.title, p.sense, p.score, p.matches)
	}

	// Prepare the search query once; every solve below — diversified
	// selection, relevance-only contrast, ranking the hand-picked set —
	// reuses the cached answer set of the "jaguar" query.
	p, err := e.Prepare(
		`Q(id, title, sense, score) :- pages(id, title, sense, score, t), t = "jaguar"`,
		diversification.WithK(4),
		diversification.WithObjective(diversification.Mono), // Fmono: novelty/coverage against all of Q(D)
		diversification.WithLambda(0.6),
		diversification.WithRelevance(func(r diversification.Row) float64 {
			return float64(r.Get("score").(int64)) / 100
		}),
		diversification.WithDistance(func(a, b diversification.Row) float64 {
			if a.Get("sense") == b.Get("sense") {
				return 0
			}
			return 1
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	sel, err := p.Diversify(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diversified results for \"jaguar\" (Fmono = %.3f):\n", sel.Value)
	for _, r := range sel.Rows {
		fmt.Printf("  [%-8v] %v\n", r.Get("sense"), r.Get("title"))
	}

	// Contrast: pure relevance ranking (λ = 0) returns the four car pages.
	// WithLambda(0) means exactly zero — no LambdaSet flag needed.
	relSel, err := p.Diversify(ctx, diversification.WithLambda(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npure relevance ranking (λ = 0):")
	senses := map[interface{}]bool{}
	for _, r := range relSel.Rows {
		senses[r.Get("sense")] = true
		fmt.Printf("  [%-8v] %v\n", r.Get("sense"), r.Get("title"))
	}
	fmt.Printf("senses covered: %d (diversified run covers more)\n", len(senses))

	// DRP in action: how does the user's hand-picked set rank?
	handPicked := [][]interface{}{
		{1, "Jaguar XF review: the executive saloon", "car", 93},
		{5, "Jaguars in the Amazon: habitat and diet", "animal", 82},
		{7, "Mac OS X Jaguar retrospective", "software", 74},
		{8, "Jacksonville Jaguars season preview", "sports", 71},
	}
	rank, err := p.Rank(ctx, handPicked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhand-picked 4-set ranks #%d among all candidate sets\n", rank)
	inTop10, err := p.InTopR(ctx, handPicked, diversification.WithRank(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within the top 10: %v\n", inTop10)
}
