// Teamselect reproduces the basketball team-formation scenario of the
// paper's Example 9.1 (after Lappas et al.): pick a k-player squad from a
// roster where max-min diversification keeps skill profiles from
// collapsing onto one archetype, and a Cm compatibility constraint caps the
// number of centers at two.
//
// The example also contrasts exact search against the greedy and
// local-search heuristics that the paper's conclusion prescribes for the
// intractable cells, reporting the approximation quality achieved.
//
// Run with:
//
//	go run ./examples/teamselect
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro"
)

type player struct {
	id                       int
	name, position           string
	scoring, defense, passes int
}

var roster = []player{
	{1, "Avery", "center", 7, 9, 3},
	{2, "Blake", "center", 8, 8, 2},
	{3, "Casey", "center", 6, 9, 4},
	{4, "Drew", "forward", 9, 6, 5},
	{5, "Emery", "forward", 8, 7, 6},
	{6, "Finley", "forward", 7, 5, 7},
	{7, "Gray", "guard", 9, 4, 9},
	{8, "Harper", "guard", 8, 5, 8},
	{9, "Indigo", "guard", 7, 6, 9},
	{10, "Jules", "forward", 6, 8, 5},
	{11, "Kai", "guard", 9, 3, 7},
	{12, "Lane", "center", 9, 7, 2},
}

func main() {
	e := diversification.NewEngine()
	e.MustCreateTable("roster", "id", "name", "position", "scoring", "defense", "passes")
	for _, p := range roster {
		e.MustInsert("roster", p.id, p.name, p.position, p.scoring, p.defense, p.passes)
	}

	// δrel: overall skill. δdis: Manhattan distance between skill profiles,
	// so FMM rewards squads whose *closest* pair is still far apart.
	relevance := func(r diversification.Row) float64 {
		return float64(r.Get("scoring").(int64) + r.Get("defense").(int64) + r.Get("passes").(int64))
	}
	distance := func(a, b diversification.Row) float64 {
		d := math.Abs(float64(a.Get("scoring").(int64)-b.Get("scoring").(int64))) +
			math.Abs(float64(a.Get("defense").(int64)-b.Get("defense").(int64))) +
			math.Abs(float64(a.Get("passes").(int64)-b.Get("passes").(int64)))
		return d
	}

	p, err := e.Prepare("Q(id, name, position, scoring, defense, passes) :- roster(id, name, position, scoring, defense, passes)",
		diversification.WithK(5),
		diversification.WithObjective(diversification.MaxMin), // FMM penalizes any homogeneous pair
		diversification.WithLambda(0.5),
		diversification.WithRelevance(relevance),
		diversification.WithDistance(distance),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	exact, err := p.Diversify(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact FMM squad (no constraints):")
	printSquad(exact)

	// Example 9.1's ρ3: no more than two centers on the squad. Any three
	// distinct selected tuples cannot all be centers — expressed in Cm by
	// deriving a contradiction from three pairwise-distinct centers.
	sel, err := p.Diversify(ctx, diversification.WithConstraints(
		`forall t1, t2, t3 (t1.position = "center", t2.position = "center", t3.position = "center",
		     t1.id != t2.id, t1.id != t3.id, t2.id != t3.id -> t1.position != t2.position)`,
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact FMM squad (at most two centers, ρ3 in Cm):")
	printSquad(sel)

	// Heuristics on the unconstrained instance: the paper's Section 10
	// notes that the intractable cells call for approximation. Gonzalez-style
	// greedy guarantees a 2-approximation for max-min dispersion.
	for _, alg := range []diversification.Algorithm{diversification.Greedy, diversification.LocalSearch} {
		h, err := p.Diversify(ctx, diversification.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		quality := 0.0
		if exact.Value > 0 {
			quality = h.Value / exact.Value
		}
		fmt.Printf("%-12s F = %.3f (%.0f%% of exact)\n", alg, h.Value, 100*quality)
	}
}

func printSquad(sel *diversification.Selection) {
	for _, row := range sel.Rows {
		fmt.Printf("  %-8v %-8v score %v / def %v / pass %v\n",
			row.Get("name"), row.Get("position"),
			row.Get("scoring"), row.Get("defense"), row.Get("passes"))
	}
	fmt.Printf("  F = %.3f\n\n", sel.Value)
}
