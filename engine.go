package diversification

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query/eval"
	"repro/internal/query/parse"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/wal"
)

// ErrUnknownTable is returned by mutations naming a table that was never
// created. Serving layers map it to a not-found status.
var ErrUnknownTable = errors.New("diversification: unknown table")

// Engine owns a database, compiles queries into Prepared handles, and
// evaluates diversification requests against it.
//
// The engine is safe for concurrent use: mutations (CreateTable, Insert,
// Delete) take the engine's write lock and every solve, refresh and query
// evaluation runs under its read lock, so a mutation waits for in-flight
// solves and a solve never observes a half-applied mutation. Long exact
// searches therefore delay mutations; cancel them via their context if
// write latency matters more than the answer.
//
// An engine from NewEngine is purely in-memory; one from OpenEngine is
// durable — every committed mutation streams to a write-ahead log before
// the mutating call returns, and Snapshot/Close manage the on-disk state.
type Engine struct {
	db *relation.Database

	// mu serializes database mutation against the read paths (solves,
	// refreshes, Query). The relation layer itself is unsynchronized; this
	// lock is what makes a service serving concurrent traffic sound.
	mu sync.RWMutex

	// Durability (nil/zero for in-memory engines). wal receives every
	// committed mutation via the database tap; snapEvery triggers an
	// automatic snapshot after that many mutations; recovery is the
	// boot-time report OpenEngine produced.
	wal           *wal.Log
	snapEvery     int
	mutsSinceSnap int
	recovery      RecoveryInfo

	// Read-only degradation (see readonly.go): a WAL write failure flips
	// degraded instead of poisoning the engine — solves keep serving,
	// mutations return ErrReadOnly, and a background probe (probeStop/
	// probeDone, backoff walProbe..walProbeMax) retries the log until
	// write mode is restored. walDir/walOpts let the probe re-create the
	// log; walErr and the counters feed Metrics and healthz.
	walDir       string
	walOpts      wal.Options
	walProbe     time.Duration
	walProbeMax  time.Duration
	degraded     atomic.Bool
	walErr       error // under mu
	probeRunning bool  // under mu
	probeStop    chan struct{}
	probeDone    chan struct{}

	walFailures   atomic.Int64
	probeAttempts atomic.Int64
	walRecoveries atomic.Int64

	// cost feeds the plan stage's deadline-aware route degradation with
	// per-route latency observations (see cost.go).
	cost costModel
}

// NewEngine creates an engine with an empty database.
func NewEngine() *Engine {
	return &Engine{db: relation.NewDatabase()}
}

// CreateTable registers a relation schema. It advances the database
// generation, invalidating every Prepared handle's cached answer set.
func (e *Engine) CreateTable(name string, attrs ...string) error {
	if len(attrs) == 0 {
		return errors.New("diversification: table needs at least one attribute")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.degraded.Load() {
		return ErrReadOnly
	}
	if e.db.Relation(name) != nil {
		return fmt.Errorf("diversification: table %q already exists", name)
	}
	e.db.Add(relation.NewRelation(relation.NewSchema(name, attrs...)))
	return e.afterMutation()
}

// MustCreateTable is CreateTable that panics on error.
func (e *Engine) MustCreateTable(name string, attrs ...string) {
	if err := e.CreateTable(name, attrs...); err != nil {
		panic(err)
	}
}

// Insert adds a row of Go values (int, int64, float64, string, bool). A new
// row advances the database generation, invalidating every Prepared
// handle's cached answer set.
func (e *Engine) Insert(table string, values ...interface{}) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.degraded.Load() {
		return ErrReadOnly
	}
	r := e.db.Relation(table)
	if r == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	if len(values) != r.Schema().Arity() {
		return argErrorf("values", "table %q expects %d values, got %d",
			table, r.Schema().Arity(), len(values))
	}
	t := make(relation.Tuple, len(values))
	for i, v := range values {
		cv, err := toValue(v)
		if err != nil {
			return argErrorf("values", "%v", err)
		}
		t[i] = cv
	}
	if r.Insert(t) {
		return e.afterMutation()
	}
	return nil
}

// MustInsert is Insert that panics on error.
func (e *Engine) MustInsert(table string, values ...interface{}) {
	if err := e.Insert(table, values...); err != nil {
		panic(err)
	}
}

// Delete removes a row, reporting whether it was present. A removed row
// advances the database generation and is recorded in the change journal,
// so Prepared handles maintain their caches incrementally where the query
// allows it.
func (e *Engine) Delete(table string, values ...interface{}) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.degraded.Load() {
		return false, ErrReadOnly
	}
	r := e.db.Relation(table)
	if r == nil {
		return false, fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	if len(values) != r.Schema().Arity() {
		return false, argErrorf("values", "table %q expects %d values, got %d",
			table, r.Schema().Arity(), len(values))
	}
	t := make(relation.Tuple, len(values))
	for i, v := range values {
		cv, err := toValue(v)
		if err != nil {
			return false, argErrorf("values", "%v", err)
		}
		t[i] = cv
	}
	if r.Delete(t) {
		return true, e.afterMutation()
	}
	return false, nil
}

// SetJournalBound caps the database's change journal at n entries (values
// <= 0 restore the default of relation.DefaultJournalBound). The journal
// keeps incremental refresh memory O(bound): when more mutations accumulate
// between refreshes than the bound retains, stale Prepared handles fall
// back to a full rebuild instead of a delta.
func (e *Engine) SetJournalBound(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.db.SetJournalBound(n)
}

func toValue(v interface{}) (value.Value, error) {
	switch x := v.(type) {
	case int:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case float64:
		return value.Float(x), nil
	case string:
		return value.Str(x), nil
	case bool:
		return value.Bool(x), nil
	case value.Value:
		return x, nil
	default:
		return value.Value{}, fmt.Errorf("diversification: unsupported value type %T", v)
	}
}

// Query parses and evaluates a query, returning the full answer set.
func (e *Engine) Query(src string) (*ResultSet, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a cancellation context: evaluation of an
// expensive (for FO, potentially exponential in the query) answer set can
// be aborted via ctx.
func (e *Engine) QueryContext(ctx context.Context, src string) (*ResultSet, error) {
	q, err := parse.Query(src)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := eval.Validate(q, e.db); err != nil {
		return nil, err
	}
	res, err := eval.EvaluateContext(ctx, q, e.db)
	if err != nil {
		return nil, err
	}
	return &ResultSet{schema: res.Schema(), rows: res.Sorted()}, nil
}

// Language reports the minimal language class of a query text: "identity",
// "CQ", "UCQ", "∃FO+" or "FO".
func (e *Engine) Language(src string) (string, error) {
	return ClassifyQuery(src)
}

// ClassifyQuery exposes the language hierarchy for a parsed query, in
// support of the paper's guidance that language choice drives combined
// complexity.
func ClassifyQuery(src string) (string, error) {
	q, err := parse.Query(src)
	if err != nil {
		return "", err
	}
	return q.Classify().String(), nil
}
