package diversification

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/fsio"
	"repro/internal/wal"
)

// ErrNotDurable is returned by snapshot operations on an engine that was
// created without a data directory (NewEngine rather than OpenEngine):
// there is nowhere to persist to. Serving layers map it to a conflict
// status.
var ErrNotDurable = errors.New("diversification: engine is not durable (opened without a data dir)")

// DurabilityConfig tunes OpenEngine's write-ahead log and snapshots.
type DurabilityConfig struct {
	// Dir is the data directory holding WAL segments and snapshots. It is
	// created if missing. Required.
	Dir string
	// Fsync is the WAL sync policy: "always" (default; an acknowledged
	// mutation is on stable storage), "interval" (sync on a timer — bounded
	// loss on power failure, none on process crash) or "off".
	Fsync string
	// FsyncInterval is the "interval" policy's period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes caps a WAL segment before rotation (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery, when positive, writes a snapshot (and prunes the log)
	// automatically after that many committed mutations. Zero means
	// snapshots happen only via Engine.Snapshot / the admin endpoint.
	SnapshotEvery int
	// ProbeBackoff and ProbeBackoffMax bound the exponential backoff of
	// the read-only recovery probe that retries a failed WAL (defaults
	// 100ms and 5s).
	ProbeBackoff    time.Duration
	ProbeBackoffMax time.Duration
	// FS is the filesystem the durability write path goes through; nil
	// means the real one. Fault-injection harnesses (internal/faultfs)
	// interpose here.
	FS fsio.FS
}

// RecoveryInfo reports what boot-time recovery found in the data directory
// and how long replay took.
type RecoveryInfo struct {
	// SnapshotGen is the generation of the snapshot loaded (0 when the
	// directory held none).
	SnapshotGen uint64 `json:"snapshot_gen"`
	// ReplayedEntries counts WAL records applied over the snapshot.
	ReplayedEntries int `json:"replayed_entries"`
	// ReplayDuration is the wall-clock cost of recovery (snapshot load plus
	// log replay).
	ReplayDuration time.Duration `json:"replay_ns"`
	// TornTail reports that a truncated final WAL record — the residue of a
	// crash mid-append — was cut away rather than treated as fatal.
	TornTail bool `json:"torn_tail,omitempty"`
	// CleanShutdown reports the previous process closed its log properly.
	CleanShutdown bool `json:"clean_shutdown,omitempty"`
	// Generation is the database generation recovery ended at.
	Generation uint64 `json:"generation"`
}

// OpenEngine is NewEngine with durability: it recovers the database
// persisted in cfg.Dir (newest valid snapshot, then WAL replay, truncating
// a torn tail record), then attaches a fresh write-ahead log so every
// subsequent committed mutation streams to disk before the mutating call
// returns. A missing or empty directory is a first boot: the engine starts
// empty and the directory is initialized.
//
// The caller owns the returned engine's lifecycle: Close flushes the log
// and writes the clean-shutdown marker. Statements are not persisted —
// re-Prepare (or re-Register) them after opening; with the database already
// recovered, their first Refresh is the only rebuild cost.
func OpenEngine(cfg DurabilityConfig) (*Engine, RecoveryInfo, error) {
	if cfg.Dir == "" {
		return nil, RecoveryInfo{}, argErrorf("data-dir", "durable engine needs a data directory")
	}
	policy := wal.FsyncAlways
	if cfg.Fsync != "" {
		p, err := wal.ParseFsyncPolicy(cfg.Fsync)
		if err != nil {
			return nil, RecoveryInfo{}, argErrorf("fsync", "%v", err)
		}
		policy = p
	}
	start := time.Now()
	db, rinfo, err := wal.Recover(cfg.Dir)
	if err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("diversification: recovering %s: %w", cfg.Dir, err)
	}
	info := RecoveryInfo{
		SnapshotGen:     rinfo.SnapshotGen,
		ReplayedEntries: rinfo.Replayed,
		ReplayDuration:  time.Since(start),
		TornTail:        rinfo.TornTail,
		CleanShutdown:   rinfo.CleanShutdown,
		Generation:      db.Generation(),
	}
	opts := wal.Options{
		Fsync:        policy,
		FsyncEvery:   cfg.FsyncInterval,
		SegmentBytes: cfg.SegmentBytes,
		FS:           cfg.FS,
	}
	log, err := wal.Create(cfg.Dir, opts)
	if err != nil {
		return nil, info, fmt.Errorf("diversification: opening WAL in %s: %w", cfg.Dir, err)
	}
	e := &Engine{
		db: db, wal: log, snapEvery: cfg.SnapshotEvery, recovery: info,
		walDir: cfg.Dir, walOpts: opts,
		walProbe: cfg.ProbeBackoff, walProbeMax: cfg.ProbeBackoffMax,
	}
	// Tap after recovery, never during: replayed records must not re-log.
	db.SetTap(log)
	return e, info, nil
}

// Recovery returns the boot-time recovery report, and whether the engine is
// durable at all.
func (e *Engine) Recovery() (RecoveryInfo, bool) {
	if e.wal == nil {
		return RecoveryInfo{}, false
	}
	return e.recovery, true
}

// Generation returns the database's current generation counter: it
// advances on every committed mutation, and every Response carries the
// generation its answer was computed at.
func (e *Engine) Generation() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db.Generation()
}

// Snapshot persists the full database at the current generation and prunes
// the write-ahead log up to it. It runs under the engine's read lock —
// mutations wait, concurrent solves do not — so the image is a consistent
// cut. Returns the snapshot's generation.
func (e *Engine) Snapshot(ctx context.Context) (uint64, error) {
	if e.wal == nil {
		return 0, ErrNotDurable
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if e.degraded.Load() {
		return 0, ErrReadOnly
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.wal.Snapshot(e.db)
}

// Close flushes and fsyncs the write-ahead log and writes the
// clean-shutdown marker, so the next boot skips torn-tail tolerance. A
// non-durable engine closes as a no-op. The engine must not be mutated
// after Close.
func (e *Engine) Close() error {
	if e.wal == nil {
		return nil
	}
	e.stopProbe()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.db.SetTap(nil)
	err := e.wal.Close()
	if e.degraded.Load() {
		// The log is known-broken; its close failing is the state we are
		// already in, not a new problem. No clean-shutdown marker is
		// written, so the next boot replays and verifies — exactly right
		// for a store that degraded mid-run.
		return nil
	}
	return err
}

// DurabilityMetrics is the durable-engine slice of Service.Metrics,
// exported with stable JSON names for the wire protocol.
type DurabilityMetrics struct {
	WALBytes        int64  `json:"wal_bytes"`
	WALRecords      int64  `json:"wal_records"`
	Fsyncs          int64  `json:"fsyncs"`
	LastSnapshotGen uint64 `json:"last_snapshot_gen"`
	ReplayedEntries int    `json:"replayed_entries"`
	ReplayNanos     int64  `json:"replay_ns"`

	// Read-only degradation counters (omitted while zero so healthy
	// deployments' metrics are byte-stable across versions): ReadOnly is
	// the current mode, WALFailures counts trips into it, ProbeAttempts
	// counts recovery retries, WALRecoveries counts successful returns to
	// write mode.
	ReadOnly      bool  `json:"read_only,omitempty"`
	WALFailures   int64 `json:"wal_failures,omitempty"`
	ProbeAttempts int64 `json:"wal_probe_attempts,omitempty"`
	WALRecoveries int64 `json:"wal_recoveries,omitempty"`
}

// durabilityMetrics snapshots the WAL counters; ok is false for in-memory
// engines.
func (e *Engine) durabilityMetrics() (DurabilityMetrics, bool) {
	if e.wal == nil {
		return DurabilityMetrics{}, false
	}
	m := e.wal.Metrics()
	return DurabilityMetrics{
		WALBytes:        m.Bytes,
		WALRecords:      m.Records,
		Fsyncs:          m.Fsyncs,
		LastSnapshotGen: m.LastSnapshotGen,
		ReplayedEntries: e.recovery.ReplayedEntries,
		ReplayNanos:     int64(e.recovery.ReplayDuration),
		ReadOnly:        e.degraded.Load(),
		WALFailures:     e.walFailures.Load(),
		ProbeAttempts:   e.probeAttempts.Load(),
		WALRecoveries:   e.walRecoveries.Load(),
	}, true
}

// afterMutation runs under the engine write lock after a generation-
// advancing mutation: it surfaces any WAL append failure and triggers the
// automatic snapshot cadence. A WAL failure no longer poisons the engine —
// it trips read-only degraded mode (see readonly.go) and reports the loss
// to THIS caller (whose mutation reached memory but not the log; it is not
// safely retryable); subsequent mutations get ErrReadOnly up front, before
// touching the database, and ARE safe to retry once the probe restores
// write mode.
func (e *Engine) afterMutation() error {
	if e.wal == nil {
		return nil
	}
	if err := e.wal.Err(); err != nil {
		e.enterReadOnlyLocked(err)
		return fmt.Errorf("diversification: write-ahead log failed, engine now read-only: %w", err)
	}
	e.mutsSinceSnap++
	if e.snapEvery > 0 && e.mutsSinceSnap >= e.snapEvery {
		if _, err := e.wal.Snapshot(e.db); err != nil {
			if werr := e.wal.Err(); werr != nil {
				e.enterReadOnlyLocked(werr)
				return fmt.Errorf("diversification: auto snapshot failed, engine now read-only: %w", err)
			}
			return fmt.Errorf("diversification: auto snapshot: %w", err)
		}
		e.mutsSinceSnap = 0
	}
	return nil
}
