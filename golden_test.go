package diversification

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// updateGolden regenerates the checked-in golden outputs:
//
//	go test -run TestExamplesGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/*.txt from the examples' current output")

// exampleNames lists every program under examples/; the test fails if a new
// example is added without a golden file (run with -update to create it).
func exampleNames(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no examples found")
	}
	return names
}

// TestExamplesGolden runs every examples/ program and diffs its output
// against the checked-in golden transcript. The examples double as
// end-to-end regression tests this way: any change to the solvers, the
// prepared-query layer or the printed formats that alters what a user sees
// shows up as a golden diff — intended changes are recorded with -update.
func TestExamplesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run per example")
	}
	for _, name := range exampleNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Env = os.Environ()
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./examples/%s: %v\nstderr:\n%s", name, err, stderr.String())
			}
			golden := filepath.Join("testdata", "golden", name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file %s (run `go test -run TestExamplesGolden -update .`): %v", golden, err)
			}
			if !bytes.Equal(want, stdout.Bytes()) {
				t.Errorf("output of examples/%s diverged from %s\n--- want ---\n%s\n--- got ---\n%s",
					name, golden, want, stdout.Bytes())
			}
		})
	}
}

// TestUpdatesReplayGolden runs divcli in -updates replay mode over the
// checked-in dynamic points workload and diffs the transcript against the
// golden file: an end-to-end regression for the incremental refresh path —
// the per-checkpoint refresh modes and delta sizes are part of the
// transcript, so a silent fall-back to full rebuilds fails the test just
// as a wrong selection does.
func TestUpdatesReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	cmd := exec.Command("go", "run", "./cmd/divcli",
		"-load", "P=testdata/updates/P.tsv",
		"-query", "Q(c0, c1) :- P(c0, c1), c0 <= 400",
		"-k", "3", "-objective", "max-sum", "-lambda", "0.7",
		"-relevance-attr", "c0", "-distance-attr", "c1",
		"-updates", "testdata/updates/updates.tsv")
	cmd.Env = os.Environ()
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("divcli -updates: %v\nstderr:\n%s", err, stderr.String())
	}
	golden := filepath.Join("testdata", "golden", "updates-replay.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run TestUpdatesReplayGolden -update .`): %v", golden, err)
	}
	if !bytes.Equal(want, stdout.Bytes()) {
		t.Errorf("updates replay diverged from %s\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, stdout.Bytes())
	}
}

// elapsedRE scrubs the only non-deterministic field of the wire protocol
// from the serve transcript.
var elapsedRE = regexp.MustCompile(`"elapsed_ns":[0-9]+`)

// TestServeGolden runs the divserve binary against its built-in demo
// database and replays the README's curl transcript over real HTTP,
// diffing the (elapsed-scrubbed) responses against the golden file. Any
// change to the wire protocol — routes, field names, status codes, the
// plan explanation — shows up as a golden diff.
func TestServeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run and a TCP listener")
	}
	// Reserve a port, free it, and hand it to divserve: a small window of
	// race, but deterministic enough for a test that retries its probe.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	// Build the real binary and exec it directly: `go run` would interpose
	// a parent process whose death leaves the server holding the pipe.
	bin := filepath.Join(t.TempDir(), "divserve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/divserve")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building divserve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-demo", "-addr", addr)
	cmd.Env = os.Environ()
	var serverLog bytes.Buffer
	cmd.Stdout, cmd.Stderr = &serverLog, &serverLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("divserve never became healthy: %v\nserver log:\n%s", err, serverLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The transcript: the same requests the README documents with curl.
	steps := []struct {
		method, path, body string
	}{
		{"GET", "/healthz", ""},
		{"POST", "/v1/query/gifts", `{"problem":"diversify","explain":true}`},
		{"POST", "/v1/query/gifts", `{"problem":"decide","bound":40}`},
		// A negative decide answer must still carry its field on the wire:
		// "exists":false, not an absent key.
		{"POST", "/v1/query/gifts", `{"problem":"decide","bound":1000}`},
		{"POST", "/v1/query/gifts", `{"problem":"count","bound":40}`},
		// An exact repeat of the decide query above: the generation is
		// unchanged, so this is a cache hit — "cached":true on the wire,
		// and the /metrics step below pins the hit counter.
		{"POST", "/v1/query/gifts", `{"problem":"decide","bound":40}`},
		{"POST", "/v1/refresh/gifts", ""},
		{"POST", "/v1/query/nope", `{}`},
		{"POST", "/v1/query/gifts", `{"k":-1}`},
		{"GET", "/metrics", ""},
	}
	var transcript strings.Builder
	for _, s := range steps {
		fmt.Fprintf(&transcript, "$ %s %s %s\n", s.method, s.path, s.body)
		var resp *http.Response
		var err error
		if s.method == "GET" {
			resp, err = client.Get(base + s.path)
		} else {
			resp, err = client.Post(base+s.path, "application/json", strings.NewReader(s.body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", s.method, s.path, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body := elapsedRE.ReplaceAllString(strings.TrimSpace(string(raw)), `"elapsed_ns":0`)
		fmt.Fprintf(&transcript, "%d %s\n", resp.StatusCode, body)
	}

	golden := filepath.Join("testdata", "golden", "serve.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(transcript.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run TestServeGolden -update .`): %v", golden, err)
	}
	if string(want) != transcript.String() {
		t.Errorf("serve transcript diverged from %s\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, transcript.String())
	}
}

// elapsedHumanRE scrubs divquery's human-format elapsed field;
// elapsedIndentRE its indented-JSON form (MarshalIndent spaces the colon).
var (
	elapsedHumanRE  = regexp.MustCompile(`elapsed=[^\s]+`)
	elapsedIndentRE = regexp.MustCompile(`"elapsed_ns": [0-9]+`)
)

// TestDegradedQueryGolden boots divserve with a poisoned cost model (the
// exact route claims an hour per solve) and a 2s default deadline, so every
// diversify request plan-degrades to the greedy route, then records the
// divquery view of it — the human degraded line and the degraded /
// degraded_from wire fields — as a golden transcript. The note text with
// its wall-clock numbers stays out (no -explain): everything captured here
// is deterministic.
func TestDegradedQueryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run and a TCP listener")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	dir := t.TempDir()
	serveBin := filepath.Join(dir, "divserve")
	queryBin := filepath.Join(dir, "divquery")
	for bin, pkg := range map[string]string{serveBin: "./cmd/divserve", queryBin: "./cmd/divquery"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	cmd := exec.Command(serveBin, "-demo", "-addr", addr, "-cost-hint", "exact=1h", "-timeout", "2s")
	cmd.Env = os.Environ()
	var serverLog bytes.Buffer
	cmd.Stdout, cmd.Stderr = &serverLog, &serverLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("divserve never became healthy: %v\nserver log:\n%s", err, serverLog.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	var transcript strings.Builder
	for _, args := range [][]string{
		{"-stmt", "gifts"},
		{"-stmt", "gifts", "-json"},
	} {
		fmt.Fprintf(&transcript, "$ divquery %s\n", strings.Join(args, " "))
		q := exec.Command(queryBin, append([]string{"-addr", base}, args...)...)
		q.Env = os.Environ()
		var stdout, stderr bytes.Buffer
		q.Stdout, q.Stderr = &stdout, &stderr
		if err := q.Run(); err != nil {
			t.Fatalf("divquery %v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		out := elapsedIndentRE.ReplaceAllString(stdout.String(), `"elapsed_ns": 0`)
		out = elapsedHumanRE.ReplaceAllString(out, "elapsed=0s")
		transcript.WriteString(out)
	}

	golden := filepath.Join("testdata", "golden", "degraded-query.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(transcript.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run TestDegradedQueryGolden -update .`): %v", golden, err)
	}
	if string(want) != transcript.String() {
		t.Errorf("degraded query transcript diverged from %s\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, transcript.String())
	}
}
