package diversification

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the checked-in golden outputs:
//
//	go test -run TestExamplesGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/*.txt from the examples' current output")

// exampleNames lists every program under examples/; the test fails if a new
// example is added without a golden file (run with -update to create it).
func exampleNames(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no examples found")
	}
	return names
}

// TestExamplesGolden runs every examples/ program and diffs its output
// against the checked-in golden transcript. The examples double as
// end-to-end regression tests this way: any change to the solvers, the
// prepared-query layer or the printed formats that alters what a user sees
// shows up as a golden diff — intended changes are recorded with -update.
func TestExamplesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run per example")
	}
	for _, name := range exampleNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Env = os.Environ()
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./examples/%s: %v\nstderr:\n%s", name, err, stderr.String())
			}
			golden := filepath.Join("testdata", "golden", name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file %s (run `go test -run TestExamplesGolden -update .`): %v", golden, err)
			}
			if !bytes.Equal(want, stdout.Bytes()) {
				t.Errorf("output of examples/%s diverged from %s\n--- want ---\n%s\n--- got ---\n%s",
					name, golden, want, stdout.Bytes())
			}
		})
	}
}

// TestUpdatesReplayGolden runs divcli in -updates replay mode over the
// checked-in dynamic points workload and diffs the transcript against the
// golden file: an end-to-end regression for the incremental refresh path —
// the per-checkpoint refresh modes and delta sizes are part of the
// transcript, so a silent fall-back to full rebuilds fails the test just
// as a wrong selection does.
func TestUpdatesReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	cmd := exec.Command("go", "run", "./cmd/divcli",
		"-load", "P=testdata/updates/P.tsv",
		"-query", "Q(c0, c1) :- P(c0, c1), c0 <= 400",
		"-k", "3", "-objective", "max-sum", "-lambda", "0.7",
		"-relevance-attr", "c0", "-distance-attr", "c1",
		"-updates", "testdata/updates/updates.tsv")
	cmd.Env = os.Environ()
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("divcli -updates: %v\nstderr:\n%s", err, stderr.String())
	}
	golden := filepath.Join("testdata", "golden", "updates-replay.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run TestUpdatesReplayGolden -update .`): %v", golden, err)
	}
	if !bytes.Equal(want, stdout.Bytes()) {
		t.Errorf("updates replay diverged from %s\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, stdout.Bytes())
	}
}
