package diversification

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ProblemKind identifies which of the paper's decision/optimization
// problems a Request asks for. The zero value is ProblemDiversify.
type ProblemKind int

const (
	// ProblemDiversify finds a best k-set under the objective (the
	// optimization form of QRD); the Response carries a Selection.
	ProblemDiversify ProblemKind = iota
	// ProblemDecide answers QRD: does a k-set with F >= Bound exist? The
	// Response carries Exists.
	ProblemDecide
	// ProblemCount answers RDC: how many valid k-sets reach Bound? The
	// Response carries Count.
	ProblemCount
	// ProblemInTopR answers DRP for the Request's Set: does it rank among
	// the top r candidate sets? The Response carries InTopR.
	ProblemInTopR
	// ProblemRank computes rank(Set) exactly; the Response carries Rank.
	ProblemRank
)

// String returns the conventional lowercase name ("diversify", "decide",
// "count", "in-top-r", "rank").
func (k ProblemKind) String() string {
	switch k {
	case ProblemDiversify:
		return "diversify"
	case ProblemDecide:
		return "decide"
	case ProblemCount:
		return "count"
	case ProblemInTopR:
		return "in-top-r"
	case ProblemRank:
		return "rank"
	default:
		return fmt.Sprintf("ProblemKind(%d)", int(k))
	}
}

func (k ProblemKind) valid() bool {
	switch k {
	case ProblemDiversify, ProblemDecide, ProblemCount, ProblemInTopR, ProblemRank:
		return true
	default:
		return false
	}
}

// ParseProblem maps the textual problem names to the typed enum; the empty
// string selects the default ProblemDiversify.
func ParseProblem(s string) (ProblemKind, error) {
	switch s {
	case "diversify", "":
		return ProblemDiversify, nil
	case "decide":
		return ProblemDecide, nil
	case "count":
		return ProblemCount, nil
	case "in-top-r", "intopr":
		return ProblemInTopR, nil
	case "rank":
		return ProblemRank, nil
	default:
		return 0, argErrorf("problem", "unknown problem %q", s)
	}
}

// MarshalJSON renders the problem as its textual name.
func (k ProblemKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the textual problem name.
func (k *ProblemKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	p, err := ParseProblem(s)
	if err != nil {
		return err
	}
	*k = p
	return nil
}

// Request is one diversification task against a Prepared statement,
// expressed uniformly for all five problems: every public solve method
// compiles into a Request, the plan stage resolves it against the
// Prepare-time bindings exactly once, and one execute dispatches it. The
// typed fields are overrides — a nil pointer leaves the Prepare-time
// binding in place — so a Request round-trips through JSON (which is how
// the network facade carries it) without an is-set sidecar per field.
//
// Go callers composing requests in code usually skip the pointers and put
// functional options in Options; the two forms merge, typed fields first:
//
//	resp, err := p.Do(ctx, diversification.Request{
//	    Problem: diversification.ProblemDecide,
//	    Options: []diversification.Option{diversification.WithBound(2)},
//	})
type Request struct {
	// Problem selects which question to answer. Defaults to diversify.
	Problem ProblemKind `json:"problem"`

	// Typed per-request overrides of the Prepare-time bindings; nil means
	// "use the prepared value".
	K         *int       `json:"k,omitempty"`
	Lambda    *float64   `json:"lambda,omitempty"`
	Objective *Objective `json:"objective,omitempty"`
	Algorithm *Algorithm `json:"algorithm,omitempty"`
	Bound     *float64   `json:"bound,omitempty"`
	Rank      *int       `json:"rank,omitempty"`

	// Set is the candidate set assessed by ProblemInTopR and ProblemRank:
	// one row per tuple, attribute values in schema order.
	Set [][]interface{} `json:"set,omitempty"`

	// Explain asks the Response to carry the plan's human-readable
	// resolution report (Response.Explain). Off by default: the report is
	// allocation per request, and Prepared.Plan exposes the same
	// information on demand.
	Explain bool `json:"explain,omitempty"`

	// Options carries further per-request overrides (relevance, distance,
	// constraints, parallelism, ...) in the functional-option form. They
	// are applied after the typed fields, so an Option wins on conflict.
	Options []Option `json:"-"`
}

// requestKey canonicalizes a Request against the statement's Prepare-time
// bindings into the statement-and-request half of a Service cache key (the
// Service prepends the database generation). The key derives from the
// merged settings — the same merge the plan stage performs — not the raw
// struct, so the two spellings of one request (a typed field vs the
// equivalent functional option) share an entry, and a request that merely
// restates a Prepare-time default keys identically to one that omits it.
//
// ok is false when the request is not cacheable: an invalid option set
// (the pipeline will produce the typed error), or a per-call
// WithRelevance/WithDistance/WithPlaneMemoryLimit override — function
// values have no canonical form, so those requests always solve.
func (p *Prepared) requestKey(req Request) (key string, ok bool) {
	if !req.Problem.valid() {
		return "", false
	}
	s, err := p.call(req.callOptions())
	if err != nil {
		return "", false
	}
	if s.dirty != 0 {
		return "", false
	}
	var b strings.Builder
	// p.id pins the statement identity: re-registering a name compiles a
	// new handle (possibly with new scoring bindings), and its id keeps the
	// old handle's entries unreachable.
	fmt.Fprintf(&b, "s%d|%s|k%d|l%g|o%s|a%s|b%g|r%d|sp%t|pm%d|w%d|inc%t|x%t",
		p.id, req.Problem, s.k, s.lambda, s.objective, s.algorithm, s.bound, s.rank,
		s.scorePlane, s.planeMaxBytes, s.workers(), s.incremental, req.Explain)
	for _, c := range s.constraints {
		fmt.Fprintf(&b, "|c%q", c)
	}
	for _, row := range req.Set {
		b.WriteString("|t")
		for _, v := range row {
			// Type-tagged values: int64(5) and float64(5) both print "5"
			// but select different tuple values downstream.
			fmt.Fprintf(&b, "(%T)%v,", v, v)
		}
	}
	return b.String(), true
}

// callOptions lowers the Request's typed overrides and Options into the
// single option slice the plan stage merges over the Prepare-time settings.
func (r Request) callOptions() []Option {
	opts := make([]Option, 0, 6+len(r.Options))
	if r.K != nil {
		opts = append(opts, WithK(*r.K))
	}
	if r.Lambda != nil {
		opts = append(opts, WithLambda(*r.Lambda))
	}
	if r.Objective != nil {
		opts = append(opts, WithObjective(*r.Objective))
	}
	if r.Algorithm != nil {
		opts = append(opts, WithAlgorithm(*r.Algorithm))
	}
	if r.Bound != nil {
		opts = append(opts, WithBound(*r.Bound))
	}
	if r.Rank != nil {
		opts = append(opts, WithRank(*r.Rank))
	}
	return append(opts, r.Options...)
}
